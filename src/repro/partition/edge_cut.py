"""Edge-cut (node assignment) partition strategies.

The paper uses XtraPuLP; we provide laptop-scale equivalents with the same
knobs that matter to AAP: balance and locality.

- :class:`HashPartitioner` — balanced, locality-free (high cut ratio); the
  usual default of vertex-centric systems.
- :class:`RangePartitioner` — contiguous id ranges; good locality for grid or
  generator graphs whose ids are spatially coherent.
- :class:`BfsPartitioner` — grows connected chunks by BFS, the closest to a
  quality offline partitioner (XtraPuLP stand-in).
- :class:`GreedyLdgPartitioner` — Linear Deterministic Greedy streaming
  partitioner (Stanton & Kliot), a realistic one-pass heuristic.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Dict, Optional

from repro.errors import PartitionError
from repro.graph.graph import Graph, Node
from repro.partition.base import NodePartitioner


class HashPartitioner(NodePartitioner):
    """Assign node ``v`` to ``hash(v) % m`` (salted for reshuffling)."""

    name = "hash"

    def __init__(self, salt: int = 0):
        self.salt = salt

    def assign(self, g: Graph, num_fragments: int) -> Dict[Node, int]:
        if num_fragments < 1:
            raise PartitionError("num_fragments must be >= 1")
        return {v: hash((self.salt, v)) % num_fragments for v in g.nodes}


class RangePartitioner(NodePartitioner):
    """Sort nodes and split into ``m`` contiguous, equally sized ranges."""

    name = "range"

    def assign(self, g: Graph, num_fragments: int) -> Dict[Node, int]:
        if num_fragments < 1:
            raise PartitionError("num_fragments must be >= 1")
        ordered = sorted(g.nodes, key=repr)
        n = len(ordered)
        assignment: Dict[Node, int] = {}
        for idx, v in enumerate(ordered):
            assignment[v] = min(idx * num_fragments // max(n, 1),
                                num_fragments - 1)
        return assignment


class BfsPartitioner(NodePartitioner):
    """Grow ``m`` connected chunks of ~n/m nodes each by repeated BFS.

    Produces low-cut, balanced fragments on meshes and road networks, which
    is the regime where BSP behaves best (Fig. 6(k), r = 1).
    """

    name = "bfs"

    def __init__(self, seed: Optional[int] = None):
        self.seed = seed

    def assign(self, g: Graph, num_fragments: int) -> Dict[Node, int]:
        if num_fragments < 1:
            raise PartitionError("num_fragments must be >= 1")
        rng = random.Random(self.seed if self.seed is not None else 0)
        target = max(1, (g.num_nodes + num_fragments - 1) // num_fragments)
        assignment: Dict[Node, int] = {}
        unassigned = set(g.nodes)
        order = sorted(unassigned, key=repr)
        rng.shuffle(order)
        fid = 0
        for start in order:
            if start in assignment:
                continue
            if fid >= num_fragments:
                fid = num_fragments - 1
            count = 0
            queue = deque([start])
            while queue and count < target:
                v = queue.popleft()
                if v in assignment:
                    continue
                assignment[v] = fid
                unassigned.discard(v)
                count += 1
                for u, _ in g.out_edges(v):
                    if u not in assignment:
                        queue.append(u)
                if g.directed:
                    for u, _ in g.in_edges(v):
                        if u not in assignment:
                            queue.append(u)
            if count:
                fid += 1
        # any leftovers (components exhausted mid-chunk) round-robin
        for i, v in enumerate(sorted(unassigned, key=repr)):
            assignment[v] = i % num_fragments
        return assignment


class GreedyLdgPartitioner(NodePartitioner):
    """Linear Deterministic Greedy streaming partitioner.

    Each node goes to the fragment maximising
    ``|neighbours already there| * (1 - size/capacity)``.
    """

    name = "ldg"

    def __init__(self, seed: Optional[int] = None):
        self.seed = seed

    def assign(self, g: Graph, num_fragments: int) -> Dict[Node, int]:
        if num_fragments < 1:
            raise PartitionError("num_fragments must be >= 1")
        rng = random.Random(self.seed if self.seed is not None else 0)
        order = sorted(g.nodes, key=repr)
        rng.shuffle(order)
        capacity = max(1.0, g.num_nodes / num_fragments * 1.1)
        sizes = [0] * num_fragments
        assignment: Dict[Node, int] = {}
        for v in order:
            neigh_counts = [0] * num_fragments
            for u, _ in g.out_edges(v):
                fid = assignment.get(u)
                if fid is not None:
                    neigh_counts[fid] += 1
            if g.directed:
                for u, _ in g.in_edges(v):
                    fid = assignment.get(u)
                    if fid is not None:
                        neigh_counts[fid] += 1
            best_fid, best_score = 0, float("-inf")
            for fid in range(num_fragments):
                penalty = 1.0 - sizes[fid] / capacity
                score = neigh_counts[fid] * max(penalty, 0.0)
                if sizes[fid] >= capacity:
                    score = -1.0
                if score > best_score:
                    best_fid, best_score = fid, score
            assignment[v] = best_fid
            sizes[best_fid] += 1
        return assignment
