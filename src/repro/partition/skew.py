"""Partition skew: measurement and controlled reshuffling.

Exp-4 of the paper (Fig. 6(k)) studies the skew ratio
``r = |F_max| / |F_median|`` and states: *"To evaluate the impact of
stragglers, we randomly reshuffled a small portion of each partitioned input
graph ... and made the graphs skewed."*  :func:`reshuffle_to_skew` reproduces
that knob: it moves nodes into fragment 0 until the requested ratio is
reached, so that fragment 0 becomes the straggler.
"""

from __future__ import annotations

import random
import statistics
from typing import Dict, Optional

from repro.errors import PartitionError
from repro.graph.graph import Graph, Node
from repro.partition.builder import build_edge_cut
from repro.partition.fragment import PartitionedGraph


def skew_ratio(pg: PartitionedGraph) -> float:
    """``r = |F_max| / |F_median|`` over fragment sizes (nodes + edges)."""
    sizes = pg.sizes()
    median = statistics.median(sizes)
    if median == 0:
        return 1.0
    return max(sizes) / median


def reshuffle_to_skew(g: Graph, assignment: Dict[Node, int], m: int,
                      target_ratio: float, heavy_fragment: int = 0,
                      seed: Optional[int] = None,
                      strategy_name: str = "skewed") -> PartitionedGraph:
    """Move random nodes into ``heavy_fragment`` until the skew ratio is met.

    Starts from a node assignment (edge-cut) and greedily reassigns randomly
    chosen nodes from other fragments until
    ``skew_ratio >= target_ratio`` or no movable node remains.
    """
    if target_ratio < 1.0:
        raise PartitionError(f"target_ratio must be >= 1, got {target_ratio}")
    if not 0 <= heavy_fragment < m:
        raise PartitionError(f"heavy_fragment {heavy_fragment} out of range")
    rng = random.Random(seed if seed is not None else 0)
    assignment = dict(assignment)
    movable = [v for v in g.nodes if assignment[v] != heavy_fragment]
    rng.shuffle(movable)
    pg = build_edge_cut(g, assignment, m, strategy_name)
    idx = 0
    while skew_ratio(pg) < target_ratio and idx < len(movable):
        # estimate how many moves close the remaining gap (each moved node
        # also drags cut-edge copies, so this overshoots slightly and the
        # loop converges in very few partition rebuilds)
        sizes = pg.sizes()
        median = statistics.median(sizes)
        deficit = target_ratio * median - sizes[heavy_fragment]
        per_node = max(pg.fragments[heavy_fragment].size
                       / max(len(pg.fragments[heavy_fragment].owned), 1), 1.0)
        # conservative batch: close at most a third of the estimated gap
        # per rebuild, so the final ratio lands near the target instead of
        # far past it
        batch = max(1, min(int(deficit / per_node / 3),
                           len(movable) // 10))
        for _ in range(batch):
            if idx >= len(movable):
                break
            assignment[movable[idx]] = heavy_fragment
            idx += 1
        pg = build_edge_cut(g, assignment, m, strategy_name)
    return pg
