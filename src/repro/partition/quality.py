"""Partition quality metrics: cut ratio, replication factor, balance."""

from __future__ import annotations

from typing import Dict

from repro.partition.fragment import PartitionedGraph


def edge_cut_ratio(pg: PartitionedGraph) -> float:
    """Fraction of edges whose endpoints live in different owner fragments.

    Computed from the fragments themselves: an edge is cut iff it is
    materialised in two fragments, so total copies minus distinct edges equals
    the number of cut edges.
    """
    total_copies = sum(f.graph.num_edges for f in pg.fragments)
    distinct = _distinct_edges(pg)
    if distinct == 0:
        return 0.0
    return (total_copies - distinct) / distinct


def _distinct_edges(pg: PartitionedGraph) -> int:
    seen = set()
    for f in pg.fragments:
        for u, v, _ in f.graph.edges():
            key = (u, v) if f.graph.directed else (min(u, v, key=repr),
                                                   max(u, v, key=repr))
            seen.add(key)
    return len(seen)


def replication_factor(pg: PartitionedGraph) -> float:
    """Average number of fragments each node resides in (>= 1)."""
    if not pg.placement:
        return 1.0
    return sum(len(fids) for fids in pg.placement.values()) / len(pg.placement)


def balance(pg: PartitionedGraph) -> float:
    """Max fragment size over mean fragment size (1.0 = perfectly balanced)."""
    sizes = pg.sizes()
    mean = sum(sizes) / len(sizes)
    if mean == 0:
        return 1.0
    return max(sizes) / mean


def summary(pg: PartitionedGraph) -> Dict[str, float]:
    """All quality metrics in one dict (used by benches and examples)."""
    from repro.partition.skew import skew_ratio
    return {
        "fragments": float(pg.num_fragments),
        "edge_cut_ratio": edge_cut_ratio(pg),
        "replication_factor": replication_factor(pg),
        "balance": balance(pg),
        "skew_ratio": skew_ratio(pg),
    }
