"""Graph partitioning: edge-cut and vertex-cut strategies, fragments, skew."""

from repro.partition.base import EdgePartitioner, NodePartitioner
from repro.partition.builder import build_edge_cut, build_vertex_cut
from repro.partition.edge_cut import (BfsPartitioner, GreedyLdgPartitioner,
                                      HashPartitioner, RangePartitioner)
from repro.partition.fragment import Fragment, PartitionedGraph
from repro.partition.skew import reshuffle_to_skew, skew_ratio
from repro.partition.vertex_cut import (GreedyVertexCutPartitioner,
                                        HashEdgePartitioner)

__all__ = [
    "NodePartitioner", "EdgePartitioner", "Fragment", "PartitionedGraph",
    "HashPartitioner", "RangePartitioner", "BfsPartitioner",
    "GreedyLdgPartitioner", "HashEdgePartitioner",
    "GreedyVertexCutPartitioner", "build_edge_cut", "build_vertex_cut",
    "reshuffle_to_skew", "skew_ratio",
]
