"""Vertex-cut (edge assignment) partition strategies.

Vertex-cut distributes edges and replicates high-degree vertices, which is
how PowerGraph/GraphLab handle skewed degree distributions.  The paper notes
AAP works with either family; tests verify the engine is partition-agnostic.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

from repro.errors import PartitionError
from repro.graph.graph import Graph, Node
from repro.partition.base import EdgePartitioner

EdgeKey = Tuple[Node, Node]


class HashEdgePartitioner(EdgePartitioner):
    """Assign edge ``(u, v)`` to ``hash((salt, u, v)) % m``."""

    name = "hash-edge"

    def __init__(self, salt: int = 0):
        self.salt = salt

    def assign(self, g: Graph, num_fragments: int) -> Dict[EdgeKey, int]:
        if num_fragments < 1:
            raise PartitionError("num_fragments must be >= 1")
        return {(u, v): hash((self.salt, u, v)) % num_fragments
                for u, v, _ in g.edges()}


class GreedyVertexCutPartitioner(EdgePartitioner):
    """PowerGraph-style greedy vertex-cut.

    Place each edge on a fragment already holding both endpoints if possible,
    else one endpoint (least-loaded such fragment), else the least-loaded
    fragment overall.  Minimises the replication factor.
    """

    name = "greedy-vertex-cut"

    def __init__(self, seed: Optional[int] = None):
        self.seed = seed

    def assign(self, g: Graph, num_fragments: int) -> Dict[EdgeKey, int]:
        if num_fragments < 1:
            raise PartitionError("num_fragments must be >= 1")
        rng = random.Random(self.seed if self.seed is not None else 0)
        placed: Dict[Node, set] = {}
        loads = [0] * num_fragments
        assignment: Dict[EdgeKey, int] = {}
        edges = sorted(g.edges(), key=lambda e: (repr(e[0]), repr(e[1])))
        rng.shuffle(edges)
        for u, v, _ in edges:
            pu = placed.get(u, set())
            pv = placed.get(v, set())
            both = pu & pv
            if both:
                fid = min(both, key=lambda f: (loads[f], f))
            elif pu or pv:
                fid = min(pu | pv, key=lambda f: (loads[f], f))
            else:
                fid = min(range(num_fragments), key=lambda f: (loads[f], f))
            assignment[(u, v)] = fid
            loads[fid] += 1
            placed.setdefault(u, set()).add(fid)
            placed.setdefault(v, set()).add(fid)
        return assignment
