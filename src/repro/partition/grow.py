"""Grow an edge-cut partition in place, without rebuilding fragments.

:func:`repro.partition.builder.build_edge_cut` materialises a partition
from scratch in O(|V| + |E|); a resident service ingesting a continuous
update stream cannot afford that per batch.  :func:`grow_edge_cut` applies
one batch of edge insertions *incrementally*: only the fragments an
insertion touches are mutated, and the mutation cost is proportional to
the batch, not the graph.  The result is — by construction, and enforced
by the equivalence tests — identical to rebuilding with the same owner
map: same local graphs, same owned/mirror/border sets, same routing index,
same placement.

The one global cost is cache invalidation: touched fragments drop their
memoized ship sets, dense routes and CSR views (they are pure functions of
a partition that just changed); an :class:`~repro.core.engine.Engine` kept
over the partition refreshes its per-fragment routing via
:meth:`~repro.core.engine.Engine.refresh_routes`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Sequence, Set, Tuple

from repro.errors import PartitionError
from repro.graph.stable import stable_owner
from repro.partition.fragment import PartitionedGraph

Node = Hashable
EdgeInsertion = Tuple[Node, Node, float]


@dataclass
class GrowthReport:
    """What one in-place growth step changed."""

    #: fragment ids whose structure (graph, sets or routing) changed
    touched: Set[int] = field(default_factory=set)
    #: per fragment: nodes that became locally present this step, in
    #: insertion order (new owned nodes and fresh mirror copies alike)
    new_local: Dict[int, List[Node]] = field(default_factory=dict)
    #: nodes that did not exist anywhere before this step
    new_nodes: Set[Node] = field(default_factory=set)

    def _note_local(self, fid: int, v: Node) -> None:
        self.new_local.setdefault(fid, []).append(v)


def grow_edge_cut(pg: PartitionedGraph,
                  insertions: Sequence[EdgeInsertion],
                  assign: Callable[[Node, int], int] = stable_owner
                  ) -> GrowthReport:
    """Mutate ``pg`` to include ``insertions``; return what changed.

    ``insertions`` must already be validated (no duplicates of existing
    edges, no self-loops, no within-batch duplicates) — growth assumes
    every edge is novel.  New nodes are owned by ``assign(v, m)``
    (default: the stable hash shared with
    :class:`~repro.streaming.StreamingSession`).

    Only edge-cut partitions grow in place; vertex-cut placement depends
    on global edge assignment and needs a rebuild.
    """
    if pg.cut != "edge":
        raise PartitionError(
            f"in-place growth requires an edge-cut partition, got "
            f"{pg.cut!r}")
    m = pg.num_fragments
    report = GrowthReport()
    # fragments collect set deltas in mutable scratch; frozensets are
    # reassigned once per touched fragment at the end
    scratch: Dict[int, Dict[str, set]] = {}
    # nodes whose presence set changed (routing must be rewritten
    # everywhere they are present)
    presence_dirty: Set[Node] = set()
    placement: Dict[Node, Set[int]] = {}

    def presence(v: Node) -> Set[int]:
        got = placement.get(v)
        if got is None:
            got = placement[v] = set(pg.placement.get(v, ()))
        return got

    def sets_of(fid: int) -> Dict[str, set]:
        got = scratch.get(fid)
        if got is None:
            frag = pg.fragments[fid]
            got = scratch[fid] = {
                "owned": set(frag.owned), "mirrors": set(frag.mirrors),
                "in_border": set(frag.in_border),
                "out_border": set(frag.out_border),
                "out_copies": set(frag.out_copies),
                "in_copies": set(frag.in_copies)}
            report.touched.add(fid)
        return got

    def ensure_owner(v: Node) -> int:
        fid = pg.owner.get(v)
        if fid is None:
            fid = assign(v, m)
            pg.owner[v] = fid
            report.new_nodes.add(v)
            report._note_local(fid, v)
            sets_of(fid)["owned"].add(v)
            pg.fragments[fid].graph.add_node(v)
            presence(v).add(fid)
            presence_dirty.add(v)
        return fid

    def ensure_mirror(fid: int, v: Node) -> None:
        """Give fragment ``fid`` a mirror copy of remotely-owned ``v``."""
        s = sets_of(fid)
        if v not in s["mirrors"]:
            s["mirrors"].add(v)
            report._note_local(fid, v)
        pres = presence(v)
        if fid not in pres:
            pres.add(fid)
            presence_dirty.add(v)

    directed = pg.fragments[0].graph.directed
    for u, v, w in insertions:
        fu = ensure_owner(u)
        fv = ensure_owner(v)
        # the edge has a copy in the fragment of each endpoint
        pg.fragments[fu].graph.add_edge(u, v, w)
        report.touched.add(fu)
        if fv != fu:
            pg.fragments[fv].graph.add_edge(u, v, w)
            # border bookkeeping, directed semantics; undirected graphs
            # get the symmetric closure — mirroring build_edge_cut exactly
            su, sv = sets_of(fu), sets_of(fv)
            su["out_border"].add(u)
            su["out_copies"].add(v)
            ensure_mirror(fu, v)
            sv["in_border"].add(v)
            sv["in_copies"].add(u)
            ensure_mirror(fv, u)
            if not directed:
                sv["out_border"].add(v)
                sv["out_copies"].add(u)
                su["in_border"].add(u)
                su["in_copies"].add(v)

    # commit set deltas and rewrite routing for dirty nodes
    for fid, s in scratch.items():
        frag = pg.fragments[fid]
        frag.owned = frozenset(s["owned"])
        frag.mirrors = frozenset(s["mirrors"])
        frag.in_border = frozenset(s["in_border"])
        frag.out_border = frozenset(s["out_border"])
        frag.out_copies = frozenset(s["out_copies"])
        frag.in_copies = frozenset(s["in_copies"])
    for v in presence_dirty:
        fids = placement[v]
        pg.placement[v] = tuple(sorted(fids))
        if len(fids) > 1:
            for fid in fids:
                pg.fragments[fid]._routing[v] = tuple(
                    sorted(fids - {fid}))
                report.touched.add(fid)
    # memoized ship sets / dense routes / CSR views are functions of the
    # partition that just changed under them
    for fid in report.touched:
        pg.fragments[fid].invalidate_caches()
    return report
