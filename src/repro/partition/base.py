"""Partition strategy interfaces.

The paper lets users pick an edge-cut or vertex-cut strategy ``P``
(Section 2).  An edge-cut strategy assigns *nodes* to fragments; a vertex-cut
strategy assigns *edges*.  Both produce a :class:`~repro.partition.fragment.
PartitionedGraph` via :mod:`repro.partition.builder`.
"""

from __future__ import annotations

import abc
from typing import Dict

from repro.errors import PartitionError
from repro.graph.graph import Graph, Node
from repro.partition.fragment import PartitionedGraph


class NodePartitioner(abc.ABC):
    """Edge-cut strategy: assigns each node to exactly one fragment."""

    name = "node-partitioner"

    @abc.abstractmethod
    def assign(self, g: Graph, num_fragments: int) -> Dict[Node, int]:
        """Return a total map node -> fragment id in ``[0, num_fragments)``."""

    def partition(self, g: Graph, num_fragments: int) -> PartitionedGraph:
        """Assign nodes and build fragments (edge-cut)."""
        from repro.partition.builder import build_edge_cut
        assignment = self.assign(g, num_fragments)
        _check_node_assignment(g, assignment, num_fragments)
        return build_edge_cut(g, assignment, num_fragments, self.name)


class EdgePartitioner(abc.ABC):
    """Vertex-cut strategy: assigns each edge to exactly one fragment."""

    name = "edge-partitioner"

    @abc.abstractmethod
    def assign(self, g: Graph, num_fragments: int):
        """Return a map (u, v) -> fragment id for every edge of ``g``."""

    def partition(self, g: Graph, num_fragments: int) -> PartitionedGraph:
        """Assign edges and build fragments (vertex-cut)."""
        from repro.partition.builder import build_vertex_cut
        assignment = self.assign(g, num_fragments)
        return build_vertex_cut(g, assignment, num_fragments, self.name)


def _check_node_assignment(g: Graph, assignment: Dict[Node, int],
                           num_fragments: int) -> None:
    if num_fragments < 1:
        raise PartitionError("num_fragments must be >= 1")
    for v in g.nodes:
        fid = assignment.get(v)
        if fid is None:
            raise PartitionError(f"node {v!r} was not assigned a fragment")
        if not 0 <= fid < num_fragments:
            raise PartitionError(
                f"node {v!r} assigned out-of-range fragment {fid}")
