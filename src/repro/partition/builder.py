"""Build fragments from node or edge assignments.

:func:`build_edge_cut` implements the paper's edge-cut semantics: a cut edge
from ``F_i`` to ``F_j`` has a copy in both fragments, and mirror copies of the
remote endpoint are materialised locally.  :func:`build_vertex_cut` implements
vertex-cut: edges are distributed and every endpoint present in more than one
fragment becomes a border node with copies.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Set, Tuple

from repro.errors import PartitionError
from repro.graph.graph import Graph, Node
from repro.partition.fragment import Fragment, PartitionedGraph


def build_edge_cut(g: Graph, owner: Mapping[Node, int], m: int,
                   strategy_name: str = "custom") -> PartitionedGraph:
    """Materialise edge-cut fragments from a node->fragment assignment."""
    local_graphs = [Graph(directed=g.directed) for _ in range(m)]
    owned: List[Set[Node]] = [set() for _ in range(m)]
    mirrors: List[Set[Node]] = [set() for _ in range(m)]
    in_border: List[Set[Node]] = [set() for _ in range(m)]
    out_border: List[Set[Node]] = [set() for _ in range(m)]
    out_copies: List[Set[Node]] = [set() for _ in range(m)]
    in_copies: List[Set[Node]] = [set() for _ in range(m)]
    presence: Dict[Node, Set[int]] = {}

    for v in g.nodes:
        fid = owner[v]
        owned[fid].add(v)
        local_graphs[fid].add_node(v, g.node_label(v))
        presence.setdefault(v, set()).add(fid)

    for u, v, w in g.edges():
        fu, fv = owner[u], owner[v]
        # the edge has a copy in the fragment of each endpoint
        local_graphs[fu].add_edge(u, v, w)
        if fv != fu:
            local_graphs[fv].add_edge(u, v, w)
            # border bookkeeping, directed semantics; undirected graphs get
            # the symmetric closure below
            out_border[fu].add(u)
            out_copies[fu].add(v)
            mirrors[fu].add(v)
            presence.setdefault(v, set()).add(fu)
            in_border[fv].add(v)
            in_copies[fv].add(u)
            mirrors[fv].add(u)
            presence.setdefault(u, set()).add(fv)
            if not g.directed:
                out_border[fv].add(v)
                out_copies[fv].add(u)
                in_border[fu].add(u)
                in_copies[fu].add(v)

    fragments = []
    for fid in range(m):
        routing = {v: tuple(sorted(presence[v] - {fid}))
                   for v in owned[fid] | mirrors[fid]
                   if len(presence[v]) > 1}
        fragments.append(Fragment(
            fid=fid, graph=local_graphs[fid], owned=owned[fid],
            mirrors=mirrors[fid], in_border=in_border[fid],
            out_border=out_border[fid], out_copies=out_copies[fid],
            in_copies=in_copies[fid], routing=routing, cut="edge"))
    placement = {v: tuple(sorted(fids)) for v, fids in presence.items()}
    return PartitionedGraph(fragments, dict(owner), placement, strategy_name,
                            cut="edge")


def build_vertex_cut(g: Graph, edge_owner: Mapping[Tuple[Node, Node], int],
                     m: int,
                     strategy_name: str = "custom") -> PartitionedGraph:
    """Materialise vertex-cut fragments from an edge->fragment assignment.

    Each node's *master* fragment is the smallest fragment id holding one of
    its edges (deterministic); copies elsewhere are mirrors.  Under vertex-cut
    the paper's border nodes are exactly the nodes with copies in more than
    one fragment; we expose them through the same I/O sets (a replicated node
    is simultaneously in-border and out-border on its master, and an in/out
    copy on the others).
    """
    local_graphs = [Graph(directed=g.directed) for _ in range(m)]
    presence: Dict[Node, Set[int]] = {}

    for u, v, w in g.edges():
        fid = edge_owner.get((u, v))
        if fid is None and not g.directed:
            fid = edge_owner.get((v, u))
        if fid is None:
            raise PartitionError(f"edge ({u!r}, {v!r}) was not assigned")
        if not 0 <= fid < m:
            raise PartitionError(f"edge ({u!r}, {v!r}) out-of-range {fid}")
        local_graphs[fid].add_edge(u, v, w)
        presence.setdefault(u, set()).add(fid)
        presence.setdefault(v, set()).add(fid)

    # isolated nodes: place on their hash fragment
    for v in g.nodes:
        if v not in presence:
            fid = hash(v) % m
            presence[v] = {fid}
            local_graphs[fid].add_node(v)

    owner: Dict[Node, int] = {v: min(fids) for v, fids in presence.items()}

    fragments = []
    for fid in range(m):
        local_nodes = set(local_graphs[fid].nodes)
        owned = {v for v in local_nodes if owner[v] == fid}
        mirror = local_nodes - owned
        replicated_owned = {v for v in owned if len(presence[v]) > 1}
        routing = {v: tuple(sorted(presence[v] - {fid}))
                   for v in local_nodes if len(presence[v]) > 1}
        fragments.append(Fragment(
            fid=fid, graph=local_graphs[fid], owned=owned, mirrors=mirror,
            in_border=replicated_owned, out_border=replicated_owned,
            out_copies=mirror, in_copies=mirror, routing=routing,
            cut="vertex"))
    placement = {v: tuple(sorted(fids)) for v, fids in presence.items()}
    return PartitionedGraph(fragments, owner, placement, strategy_name,
                            cut="vertex")
