"""Fragments: the unit of data-partitioned parallelism.

A fragment ``F_i`` (Section 2 of the paper) is a subgraph assigned to a
virtual worker.  Under edge-cut, a cut edge from ``F_i`` to ``F_j`` has a copy
in both fragments, so a fragment holds its *owned* nodes plus *mirror* copies
of remote endpoints.  The paper's border sets are exposed directly:

- ``F.I``  (:attr:`Fragment.in_border`):  owned nodes with an
  incoming cut edge,
- ``F.O'`` (:attr:`Fragment.out_border`): owned nodes with an
  outgoing cut edge,
- ``F.O``  (:attr:`Fragment.out_copies`): remote nodes that owned
  nodes point to,
- ``F.I'`` (:attr:`Fragment.in_copies`):  remote nodes that point
  into owned nodes.

Each fragment also carries the routing index ``I_i`` (paper, Section 3):
for a border node ``v``, :meth:`Fragment.locations` returns every other
fragment where ``v`` resides, used to derive designated messages ``M(i, j)``.
"""

from __future__ import annotations

from typing import (Any, Callable, Dict, FrozenSet, Hashable, Iterable,
                    List, Mapping, Optional,
                    Sequence, Tuple)

import numpy as np

from repro.errors import PartitionError
from repro.graph.csr import CompactGraph
from repro.graph.graph import Graph, Node


class FragmentCSR:
    """Cached array view of one fragment: contiguous local ids + CSR.

    The vectorized fast path stores status variables in arrays indexed by
    *local id* (lid); this view provides the lid <-> global-node mapping,
    a :class:`~repro.graph.csr.CompactGraph` over lids, and owned/mirror
    boolean masks.  It requires non-negative integer node ids (what every
    generator produces); build it through :meth:`Fragment.compact`, which
    caches one instance per fragment.
    """

    __slots__ = ("fragment", "nodes", "lid_of", "gids", "csr",
                 "owned_mask", "mirror_mask", "_gid_to_lid")

    def __init__(self, frag: "Fragment"):
        nodes = []
        for v in frag.graph.nodes:
            if isinstance(v, bool) or not isinstance(v, (int, np.integer)) \
                    or v < 0:
                raise PartitionError(
                    f"fragment {frag.fid}: dense view requires non-negative "
                    f"integer node ids, got {v!r}")
            nodes.append(int(v))
        nodes.sort()
        self.fragment = frag
        #: local nodes in lid order (sorted global ids)
        self.nodes: List[int] = nodes
        self.lid_of: Dict[int, int] = {v: i for i, v in enumerate(nodes)}
        self.gids = np.asarray(nodes, dtype=np.int64)
        lid = self.lid_of
        edges = [(lid[u], lid[v], w) for u, v, w in frag.graph.edges()]
        self.csr = CompactGraph.from_edges(len(nodes), edges,
                                           directed=frag.graph.directed)
        self.owned_mask = np.zeros(len(nodes), dtype=bool)
        for v in frag.owned:
            self.owned_mask[lid[v]] = True
        self.mirror_mask = ~self.owned_mask
        self._gid_to_lid = None

    def __len__(self) -> int:
        return len(self.nodes)

    def lids_for(self, gids: np.ndarray) -> np.ndarray:
        """Vectorized global-id -> lid lookup; ``-1`` for non-local ids."""
        if self._gid_to_lid is None:
            size = int(self.gids[-1]) + 1 if self.gids.size else 0
            table = np.full(size, -1, dtype=np.int64)
            table[self.gids] = np.arange(len(self.nodes), dtype=np.int64)
            self._gid_to_lid = table
        table = self._gid_to_lid
        gids = np.asarray(gids, dtype=np.int64)
        out = np.full(gids.shape, -1, dtype=np.int64)
        ok = (gids >= 0) & (gids < table.size)
        out[ok] = table[gids[ok]]
        return out


class Fragment:
    """One fragment of a partitioned graph, resident at one virtual worker."""

    __slots__ = ("fid", "graph", "owned", "mirrors", "in_border", "out_border",
                 "out_copies", "in_copies", "cut", "_routing", "_compact",
                 "_memo")

    def __init__(self, fid: int, graph: Graph, owned: Iterable[Node],
                 mirrors: Iterable[Node],
                 in_border: Iterable[Node], out_border: Iterable[Node],
                 out_copies: Iterable[Node], in_copies: Iterable[Node],
                 routing: Mapping[Node, Sequence[int]],
                 cut: str = "edge"):
        self.fid = fid
        self.cut = cut
        self.graph = graph
        self.owned: FrozenSet[Node] = frozenset(owned)
        self.mirrors: FrozenSet[Node] = frozenset(mirrors)
        self.in_border: FrozenSet[Node] = frozenset(in_border)
        self.out_border: FrozenSet[Node] = frozenset(out_border)
        self.out_copies: FrozenSet[Node] = frozenset(out_copies)
        self.in_copies: FrozenSet[Node] = frozenset(in_copies)
        self._routing: Dict[Node, Tuple[int, ...]] = {
            v: tuple(fids) for v, fids in routing.items()}
        self._compact: Optional[FragmentCSR] = None
        self._memo: Optional[Dict] = None
        self._validate()

    def _validate(self) -> None:
        if self.owned & self.mirrors:
            overlap = next(iter(self.owned & self.mirrors))
            raise PartitionError(
                f"fragment {self.fid}: node {overlap!r} both owned and mirror")
        for v in self.in_border | self.out_border:
            if v not in self.owned:
                raise PartitionError(
                    f"fragment {self.fid}: border node {v!r} not owned")
        for v in self.out_copies | self.in_copies:
            if v not in self.mirrors:
                raise PartitionError(
                    f"fragment {self.fid}: copy {v!r} not a mirror")

    # ------------------------------------------------------------------
    @property
    def border_nodes(self) -> FrozenSet[Node]:
        """The paper's border nodes of ``F_i``: ``F.I ∪ F.O'``."""
        return self.in_border | self.out_border

    @property
    def shared_nodes(self) -> FrozenSet[Node]:
        """All nodes with a presence in some other fragment
        (border + mirrors)."""
        return self.border_nodes | self.mirrors

    def locations(self, v: Node) -> Tuple[int, ...]:
        """Fragment ids (excluding this one) where node ``v`` also resides.

        This is the routing index ``I_i`` deduced from the partition strategy.
        Nodes local to this fragment only return an empty tuple.
        """
        return self._routing.get(v, ())

    def peer_fragments(self) -> FrozenSet[int]:
        """Fragments sharing at least one node with this one (its senders).

        Memoized: the routing index is fixed at construction and runtimes
        rebuild their queues from this on every run.
        """
        return self.memo("peer_fragments", self._compute_peers)

    def _compute_peers(self) -> FrozenSet[int]:
        peers = set()
        for fids in self._routing.values():
            peers.update(fids)
        return frozenset(peers)

    def nodes(self) -> Iterable[Node]:
        """All nodes present locally (owned + mirrors)."""
        return self.graph.nodes

    def compact(self) -> FragmentCSR:
        """The cached :class:`FragmentCSR` array view of this fragment.

        Built lazily on first use; the vectorized fast path calls this per
        context construction, so later calls must be free.  Raises
        :class:`~repro.errors.PartitionError` if node ids are not
        non-negative integers.
        """
        if self._compact is None:
            self._compact = FragmentCSR(self)
        return self._compact

    def memo(self, key: Hashable, build: Callable[[], Any]) -> Any:
        """Memoize partition-derived data on this fragment.

        Engines cache ship sets and dense routing masks here (keyed by
        program class): they are pure functions of the partition, so
        rebuilding them on every engine construction over the same
        ``PartitionedGraph`` is wasted work.  Cached objects must be
        treated as immutable by callers.
        """
        if self._memo is None:
            self._memo = {}
        try:
            return self._memo[key]
        except KeyError:
            value = build()
            self._memo[key] = value
            return value

    def invalidate_caches(self) -> None:
        """Drop every memoized view after the fragment grew in place.

        :func:`repro.partition.grow.grow_edge_cut` mutates the local graph
        and the border/routing sets; the cached CSR view, ship sets, dense
        routes and peer sets are all pure functions of that structure and
        must be rebuilt on next use.  Engines kept over the partition
        additionally call :meth:`~repro.core.engine.Engine.refresh_routes`
        to refresh the per-instance copies they hold.
        """
        self._compact = None
        self._memo = None

    @property
    def num_local_nodes(self) -> int:
        return len(self.owned)

    @property
    def num_local_edges(self) -> int:
        return self.graph.num_edges

    @property
    def size(self) -> int:
        """Fragment size ``|F_i|`` (nodes + edges), used for skew ratio r."""
        return self.graph.num_nodes + self.graph.num_edges

    def __repr__(self) -> str:
        return (f"Fragment(fid={self.fid}, owned={len(self.owned)}, "
                f"mirrors={len(self.mirrors)}, edges={self.graph.num_edges})")


class PartitionedGraph:
    """A graph partitioned into fragments ``(F_1, ..., F_m)``.

    Provides the global placement map (node -> fragments where it resides)
    and owner lookup used by the engine and by ``Assemble``.
    """

    __slots__ = ("fragments", "owner", "placement", "strategy_name", "cut")

    def __init__(self, fragments: Sequence[Fragment],
                 owner: Mapping[Node, int],
                 placement: Mapping[Node, Sequence[int]],
                 strategy_name: str = "custom", cut: str = "edge"):
        self.cut = cut
        self.fragments: List[Fragment] = list(fragments)
        self.owner: Dict[Node, int] = dict(owner)
        self.placement: Dict[Node, Tuple[int, ...]] = {
            v: tuple(fids) for v, fids in placement.items()}
        self.strategy_name = strategy_name
        if not self.fragments:
            raise PartitionError("a partition needs at least one fragment")
        seen_fids = {f.fid for f in self.fragments}
        if seen_fids != set(range(len(self.fragments))):
            raise PartitionError(
                f"fragment ids must be 0..m-1, got {sorted(seen_fids)}")

    @property
    def num_fragments(self) -> int:
        return len(self.fragments)

    def fragment_of(self, v: Node) -> Fragment:
        """The fragment that owns node ``v``."""
        try:
            return self.fragments[self.owner[v]]
        except KeyError:
            raise PartitionError(f"node {v!r} has no owner") from None

    def sizes(self) -> List[int]:
        return [f.size for f in self.fragments]

    def __iter__(self):
        return iter(self.fragments)

    def __len__(self) -> int:
        return len(self.fragments)

    def __repr__(self) -> str:
        return (f"PartitionedGraph(m={self.num_fragments}, "
                f"strategy={self.strategy_name!r}, sizes={self.sizes()})")
