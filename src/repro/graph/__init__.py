"""Graph substrate: property graphs, generators, reference algorithms, IO."""

from repro.graph.graph import Graph, Node
from repro.graph.csr import CompactGraph
from repro.graph import generators, analysis, io

__all__ = ["Graph", "CompactGraph", "Node", "generators", "analysis", "io"]
