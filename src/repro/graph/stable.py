"""Process-stable hashing of node identifiers.

Python's builtin ``hash`` is salted per process for ``str``/``bytes``
(``PYTHONHASHSEED``), so any placement decision derived from it — e.g.
``hash(v) % m`` fragment ownership — differs between two processes looking
at the same graph.  For a resident service whose owner map must agree with
every client, checkpoint and replica, placement has to be a pure function
of the node id.

:func:`stable_hash` is that function: a blake2b digest of a canonical,
type-tagged byte encoding of the id.  It is deterministic across processes,
interpreter restarts, and ``PYTHONHASHSEED`` values, and does not collide
``1`` with ``"1"`` (the type tag separates them — unlike ``repr``-based
schemes where ``repr(1) == "1"[1:-1]`` classes of confusion creep in).
"""

from __future__ import annotations

import hashlib
from typing import Hashable

Node = Hashable

_INT = b"i"
_STR = b"s"
_BYTES = b"y"
_FLOAT = b"f"
_BOOL = b"b"
_NONE = b"n"
_TUPLE = b"t"
_FROZENSET = b"z"
_REPR = b"r"


def canonical_bytes(v: Node) -> bytes:
    """A type-tagged byte encoding of ``v``, stable across processes.

    Covers the id types the generators and loaders produce (ints, strings,
    bytes, floats, tuples and frozensets thereof, ``None``); anything else
    falls back to ``repr``, which is stable for value-like objects but not
    for objects whose ``repr`` embeds a memory address — don't use those
    as node ids.
    """
    # bool before int: True is an int subtype but must not hash like 1
    if isinstance(v, bool):
        return _BOOL + (b"1" if v else b"0")
    if isinstance(v, int):
        return _INT + str(v).encode("ascii")
    if isinstance(v, str):
        return _STR + v.encode("utf-8")
    if isinstance(v, bytes):
        return _BYTES + v
    if isinstance(v, float):
        return _FLOAT + repr(v).encode("ascii")
    if v is None:
        return _NONE
    if isinstance(v, tuple):
        parts = [canonical_bytes(x) for x in v]
        return _TUPLE + b"".join(
            len(p).to_bytes(4, "big") + p for p in parts)
    if isinstance(v, frozenset):
        parts = sorted(canonical_bytes(x) for x in v)
        return _FROZENSET + b"".join(
            len(p).to_bytes(4, "big") + p for p in parts)
    return _REPR + repr(v).encode("utf-8")


def stable_hash(v: Node) -> int:
    """A 64-bit hash of node id ``v``, identical in every process."""
    digest = hashlib.blake2b(canonical_bytes(v), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def stable_owner(v: Node, m: int) -> int:
    """Deterministic fragment assignment: ``stable_hash(v) % m``.

    The shared placement function of :class:`repro.streaming.
    StreamingSession` and :class:`repro.serve.GraphService` — both must
    agree on ownership for warm state to carry across processes.
    """
    return stable_hash(v) % m
