"""Compact CSR graph backend (numpy) for large inputs.

:class:`CompactGraph` stores a graph with integer node ids ``0..n-1`` in
compressed-sparse-row form (``indptr``/``indices``/``weights`` arrays plus
the reverse adjacency).  It implements the read-side API of
:class:`repro.graph.graph.Graph` (``nodes``, ``out_edges``, ``in_edges``,
``edges``, degrees, ``has_node``/``has_edge``, ``weight``), so the
sequential reference algorithms in :mod:`repro.graph.analysis` and the
partitioners run on it unchanged — at a fraction of the dict-of-lists
memory for multi-million-edge graphs.

CompactGraph is immutable; build one with :meth:`from_edges` or
:meth:`from_graph`, or convert back with :meth:`to_graph`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.graph import Graph

Edge = Tuple[int, int, float]


def expand_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Indices of the concatenated ranges ``[s, s+c)`` — vectorized.

    The ragged-range expansion used by every CSR kernel: given per-node
    slice starts and lengths, produce the flat edge-index array without a
    Python loop.  One scatter + one cumsum over the output — cheaper than
    the textbook double-``np.repeat`` formulation, whose repeats touch
    edge-sized intermediates twice.
    """
    nz = counts > 0
    if not nz.all():
        starts = starts[nz]
        counts = counts[nz]
    if starts.size == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(counts)
    out = np.ones(int(ends[-1]), dtype=np.int64)
    out[0] = starts[0]
    if starts.size > 1:
        # at each range boundary, jump from the previous range's last
        # index (starts[i-1] + counts[i-1] - 1) to starts[i]
        out[ends[:-1]] = starts[1:] - starts[:-1] - counts[:-1] + 1
    return np.cumsum(out)


class CompactGraph:
    """Immutable CSR graph over integer node ids ``0..num_nodes-1``."""

    __slots__ = ("directed", "_n", "_indptr", "_indices", "_weights",
                 "_rindptr", "_rindices", "_rweights", "_num_edges",
                 "_src_out", "_src_in")

    def __init__(self, num_nodes: int, indptr: np.ndarray,
                 indices: np.ndarray, weights: np.ndarray,
                 rindptr: np.ndarray, rindices: np.ndarray,
                 rweights: np.ndarray, directed: bool, num_edges: int):
        self.directed = directed
        self._n = num_nodes
        self._indptr = indptr
        self._indices = indices
        self._weights = weights
        self._rindptr = rindptr
        self._rindices = rindices
        self._rweights = rweights
        self._num_edges = num_edges
        self._src_out: Optional[np.ndarray] = None
        self._src_in: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, num_nodes: int, edges: Iterable[Edge],
                   directed: bool = True) -> "CompactGraph":
        """Build from ``(u, v, weight)`` triples over ids ``0..n-1``.

        Duplicate edges are kept as parallel entries (unlike ``Graph``,
        which collapses them) — deduplicate upstream if needed.
        """
        edge_list = list(edges)
        for u, v, _ in edge_list:
            if not (0 <= u < num_nodes and 0 <= v < num_nodes):
                raise GraphError(
                    f"edge ({u}, {v}) out of range 0..{num_nodes - 1}")
            if u == v:
                raise GraphError(f"self-loops are not supported: {u}")
        if directed:
            fwd = edge_list
        else:
            fwd = edge_list + [(v, u, w) for u, v, w in edge_list]
        src = np.fromiter((e[0] for e in fwd), dtype=np.int64,
                          count=len(fwd))
        dst = np.fromiter((e[1] for e in fwd), dtype=np.int64,
                          count=len(fwd))
        wgt = np.fromiter((e[2] for e in fwd), dtype=np.float64,
                          count=len(fwd))
        indptr, indices, weights = cls._build_csr(num_nodes, src, dst, wgt)
        rindptr, rindices, rweights = cls._build_csr(num_nodes, dst, src,
                                                     wgt)
        return cls(num_nodes, indptr, indices, weights, rindptr, rindices,
                   rweights, directed, num_edges=len(edge_list))

    @staticmethod
    def _build_csr(n: int, src: np.ndarray, dst: np.ndarray,
                   wgt: np.ndarray):
        order = np.argsort(src, kind="stable")
        src_sorted = src[order]
        indices = dst[order]
        weights = wgt[order]
        counts = np.bincount(src_sorted, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return indptr, indices, weights

    @classmethod
    def from_graph(cls, g: Graph) -> "CompactGraph":
        """Convert a :class:`Graph` whose node ids are ``0..n-1`` ints."""
        nodes = sorted(g.nodes)
        if nodes != list(range(len(nodes))):
            raise GraphError(
                "CompactGraph requires contiguous integer node ids "
                "0..n-1; relabel first")
        return cls.from_edges(len(nodes), list(g.edges()),
                              directed=g.directed)

    def to_graph(self) -> Graph:
        """Materialise back into a mutable dict-based :class:`Graph`."""
        g = Graph(directed=self.directed)
        for v in range(self._n):
            g.add_node(v)
        for u, v, w in self.edges():
            g.add_edge(u, v, w)
        return g

    # ------------------------------------------------------------------
    # Graph read API
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> range:
        return range(self._n)

    @property
    def num_nodes(self) -> int:
        return self._n

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def has_node(self, v) -> bool:
        return isinstance(v, (int, np.integer)) and 0 <= v < self._n

    def _check(self, v) -> None:
        if not self.has_node(v):
            raise GraphError(f"unknown node: {v!r}")

    # -- zero-copy array accessors (vectorized fast paths) -------------
    @property
    def out_indptr(self) -> np.ndarray:
        return self._indptr

    @property
    def out_indices(self) -> np.ndarray:
        return self._indices

    @property
    def out_weights(self) -> np.ndarray:
        return self._weights

    @property
    def in_indptr(self) -> np.ndarray:
        return self._rindptr

    @property
    def in_indices(self) -> np.ndarray:
        return self._rindices

    @property
    def in_weights(self) -> np.ndarray:
        return self._rweights

    @property
    def out_sources(self) -> np.ndarray:
        """Per-edge tail node: ``out_sources[e]`` is the source of the
        edge stored at flat index ``e`` of ``out_indices``.

        Built lazily once per graph and cached — it turns the per-wave
        ``np.repeat(values[frontier], counts)`` gather the dense kernels
        would otherwise do into a single fancy-index read.
        """
        if self._src_out is None:
            self._src_out = np.repeat(
                np.arange(self._n, dtype=np.int64),
                np.diff(self._indptr))
        return self._src_out

    @property
    def in_sources(self) -> np.ndarray:
        """Per-edge head node of the reverse adjacency (see
        :attr:`out_sources`)."""
        if self._src_in is None:
            self._src_in = np.repeat(
                np.arange(self._n, dtype=np.int64),
                np.diff(self._rindptr))
        return self._src_in

    def out_arrays(self, v) -> Tuple[np.ndarray, np.ndarray]:
        """Zero-copy ``(indices, weights)`` views of ``v``'s out-edges.

        Unlike :meth:`out_edges` this materialises no Python objects —
        callers that consume numpy directly skip the ``tolist()+zip``
        cost entirely.  The views are read-only slices of the CSR arrays;
        do not mutate them.
        """
        self._check(v)
        lo, hi = self._indptr[v], self._indptr[v + 1]
        return self._indices[lo:hi], self._weights[lo:hi]

    def in_arrays(self, v) -> Tuple[np.ndarray, np.ndarray]:
        """Zero-copy ``(indices, weights)`` views of ``v``'s in-edges."""
        self._check(v)
        lo, hi = self._rindptr[v], self._rindptr[v + 1]
        return self._rindices[lo:hi], self._rweights[lo:hi]

    def out_edges(self, v) -> List[Tuple[int, float]]:
        self._check(v)
        lo, hi = self._indptr[v], self._indptr[v + 1]
        return list(zip(self._indices[lo:hi].tolist(),
                        self._weights[lo:hi].tolist()))

    def in_edges(self, v) -> List[Tuple[int, float]]:
        self._check(v)
        lo, hi = self._rindptr[v], self._rindptr[v + 1]
        return list(zip(self._rindices[lo:hi].tolist(),
                        self._rweights[lo:hi].tolist()))

    def neighbors(self, v) -> Iterator[int]:
        for u, _ in self.out_edges(v):
            yield u

    def out_degree(self, v) -> int:
        self._check(v)
        return int(self._indptr[v + 1] - self._indptr[v])

    def in_degree(self, v) -> int:
        self._check(v)
        return int(self._rindptr[v + 1] - self._rindptr[v])

    def has_edge(self, u, v) -> bool:
        if not (self.has_node(u) and self.has_node(v)):
            return False
        lo, hi = self._indptr[u], self._indptr[u + 1]
        return bool(np.any(self._indices[lo:hi] == v))

    def weight(self, u, v) -> float:
        self._check(u)
        self._check(v)
        lo, hi = self._indptr[u], self._indptr[u + 1]
        hits = np.nonzero(self._indices[lo:hi] == v)[0]
        if hits.size == 0:
            raise GraphError(f"unknown edge: ({u!r}, {v!r})")
        return float(self._weights[lo + hits[0]])

    def node_label(self, v, default=None):
        return default

    def edges(self) -> Iterator[Edge]:
        """Each stored edge once (canonical ``u <= v`` for undirected)."""
        for u in range(self._n):
            lo, hi = self._indptr[u], self._indptr[u + 1]
            for idx in range(lo, hi):
                v = int(self._indices[idx])
                if self.directed or u <= v:
                    yield u, v, float(self._weights[idx])

    # ------------------------------------------------------------------
    def __contains__(self, v) -> bool:
        return self.has_node(v)

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return (f"CompactGraph({kind}, nodes={self._n}, "
                f"edges={self._num_edges})")
