"""Synthetic graph generators.

These stand in for the paper's real-life datasets (see DESIGN.md, section 2):

- :func:`powerlaw` (Barabási–Albert preferential attachment) and :func:`rmat`
  stand in for *Friendster* and *UKWeb* — skewed degree, low diameter.
- :func:`grid2d` stands in for *traffic* (US road network) — bounded degree,
  huge diameter, which is what makes SSSP/CC slow under BSP.
- :func:`bipartite_ratings` stands in for *movieLens*/*Netflix* — a user×item
  rating graph generated from planted latent factors so that CF has a
  recoverable ground truth.
- :func:`small_world` (Watts–Strogatz) matches the paper's synthetic GTgraph
  "small world" graphs; :func:`erdos_renyi` is the uniform baseline.

All generators are deterministic given ``seed``.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.errors import GraphError
from repro.graph.graph import Graph


def _rng(seed: Optional[int]) -> random.Random:
    return random.Random(seed if seed is not None else 0)


def erdos_renyi(n: int, p: float, directed: bool = False,
                weighted: bool = False, seed: Optional[int] = None) -> Graph:
    """G(n, p) random graph; each ordered (or unordered) pair independently."""
    if not 0.0 <= p <= 1.0:
        raise GraphError(f"p must be in [0, 1], got {p}")
    rng = _rng(seed)
    g = Graph(directed=directed)
    for v in range(n):
        g.add_node(v)
    for u in range(n):
        start = 0 if directed else u + 1
        for v in range(start, n):
            if u != v and rng.random() < p:
                w = rng.uniform(1.0, 10.0) if weighted else 1.0
                g.add_edge(u, v, w)
    return g


def powerlaw(n: int, m: int = 3, directed: bool = False,
             weighted: bool = False, seed: Optional[int] = None) -> Graph:
    """Barabási–Albert preferential attachment: ``m`` edges per new node.

    Produces the heavy-tailed degree distribution of social/web graphs
    (Friendster, UKWeb stand-in).
    """
    if n < m + 1:
        raise GraphError(f"need n > m, got n={n}, m={m}")
    rng = _rng(seed)
    g = Graph(directed=directed)
    # seed clique of m+1 nodes
    targets: List[int] = list(range(m + 1))
    repeated: List[int] = []
    for v in range(m + 1):
        g.add_node(v)
    for u in range(m + 1):
        for v in range(u + 1, m + 1):
            w = rng.uniform(1.0, 10.0) if weighted else 1.0
            g.add_edge(u, v, w)
            repeated.extend((u, v))
    for v in range(m + 1, n):
        chosen = set()
        while len(chosen) < m:
            chosen.add(rng.choice(repeated))
        for u in chosen:
            w = rng.uniform(1.0, 10.0) if weighted else 1.0
            g.add_edge(v, u, w)
        repeated.extend(chosen)
        repeated.extend([v] * m)
    return g


def rmat(scale: int, edge_factor: int = 8,
         a: float = 0.57, b: float = 0.19, c: float = 0.19,
         directed: bool = True, weighted: bool = False,
         seed: Optional[int] = None) -> Graph:
    """RMAT/Kronecker generator as used by GTgraph (paper's synthetic graphs).

    ``2**scale`` nodes, ``edge_factor * 2**scale`` sampled edges, quadrant
    probabilities ``(a, b, c, 1-a-b-c)``.  Isolated node ids are still added so
    node count is exactly ``2**scale``.
    """
    if a + b + c >= 1.0:
        raise GraphError("require a + b + c < 1")
    rng = _rng(seed)
    n = 1 << scale
    g = Graph(directed=directed)
    for v in range(n):
        g.add_node(v)
    d = 1.0 - a - b - c
    for _ in range(edge_factor * n):
        u = v = 0
        half = n >> 1
        while half >= 1:
            r = rng.random()
            if r < a:
                pass
            elif r < a + b:
                v += half
            elif r < a + b + c:
                u += half
            else:
                u += half
                v += half
            half >>= 1
        if u == v:
            continue
        w = rng.uniform(1.0, 10.0) if weighted else 1.0
        g.add_edge(u, v, w)
    _ = d  # quadrant probability retained for documentation
    return g


def small_world(n: int, k: int = 4, beta: float = 0.1,
                weighted: bool = False, seed: Optional[int] = None) -> Graph:
    """Watts–Strogatz small-world graph: ring lattice with rewiring."""
    if k % 2 or k >= n:
        raise GraphError(f"k must be even and < n, got k={k}, n={n}")
    rng = _rng(seed)
    g = Graph(directed=False)
    for v in range(n):
        g.add_node(v)
    for v in range(n):
        for off in range(1, k // 2 + 1):
            u = (v + off) % n
            tgt = u
            if rng.random() < beta:
                tgt = rng.randrange(n)
                tries = 0
                while (tgt == v or g.has_edge(v, tgt)) and tries < 16:
                    tgt = rng.randrange(n)
                    tries += 1
                if tgt == v or g.has_edge(v, tgt):
                    tgt = u
            if not g.has_edge(v, tgt) and tgt != v:
                w = rng.uniform(1.0, 10.0) if weighted else 1.0
                g.add_edge(v, tgt, w)
    return g


def grid2d(rows: int, cols: int, weighted: bool = True,
           seed: Optional[int] = None) -> Graph:
    """2-D grid road network (traffic stand-in): node id = row*cols + col.

    Large diameter and uniform degree make it the adversarial case for BSP
    (many supersteps), matching the paper's *traffic* results.
    """
    if rows < 1 or cols < 1:
        raise GraphError("grid needs positive dimensions")
    rng = _rng(seed)
    g = Graph(directed=False)
    for r in range(rows):
        for c in range(cols):
            g.add_node(r * cols + c)
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                w = rng.uniform(1.0, 10.0) if weighted else 1.0
                g.add_edge(v, v + 1, w)
            if r + 1 < rows:
                w = rng.uniform(1.0, 10.0) if weighted else 1.0
                g.add_edge(v, v + cols, w)
    return g


def bipartite_ratings(num_users: int, num_items: int, ratings_per_user: int,
                      rank: int = 4, noise: float = 0.05,
                      seed: Optional[int] = None
                      ) -> Tuple[Graph, List[List[float]], List[List[float]]]:
    """Bipartite user×item rating graph with planted latent factors.

    Users are nodes ``("u", i)``; items are nodes ``("p", j)``.  Each user
    rates ``ratings_per_user`` distinct random items; the rating is
    ``dot(u_f, p_f) + noise`` for planted rank-``rank`` factors, so CF has a
    recoverable ground truth.  Returns ``(graph, user_factors, item_factors)``.
    """
    if ratings_per_user > num_items:
        raise GraphError("ratings_per_user cannot exceed num_items")
    rng = _rng(seed)
    user_f = [[rng.uniform(0.1, 1.0) for _ in range(rank)]
              for _ in range(num_users)]
    item_f = [[rng.uniform(0.1, 1.0) for _ in range(rank)]
              for _ in range(num_items)]
    g = Graph(directed=False)
    for i in range(num_users):
        g.add_node(("u", i))
    for j in range(num_items):
        g.add_node(("p", j))
    for i in range(num_users):
        items = rng.sample(range(num_items), ratings_per_user)
        for j in items:
            rating = sum(a * b for a, b in zip(user_f[i], item_f[j]))
            rating += rng.gauss(0.0, noise)
            g.add_edge(("u", i), ("p", j), rating)
    return g, user_f, item_f


def path_graph(n: int, weighted: bool = False,
               seed: Optional[int] = None) -> Graph:
    """Simple path 0-1-...-(n-1); worst case for propagation depth."""
    rng = _rng(seed)
    g = Graph(directed=False)
    for v in range(n):
        g.add_node(v)
    for v in range(n - 1):
        w = rng.uniform(1.0, 10.0) if weighted else 1.0
        g.add_edge(v, v + 1, w)
    return g


def star_graph(n: int) -> Graph:
    """Star with hub 0 and n-1 leaves; extreme degree skew in one node."""
    g = Graph(directed=False)
    g.add_node(0)
    for v in range(1, n):
        g.add_edge(0, v, 1.0)
    return g


def complete_graph(n: int, directed: bool = False) -> Graph:
    """Clique over ``n`` nodes (used by the MapReduce simulation, Thm. 4)."""
    g = Graph(directed=directed)
    for v in range(n):
        g.add_node(v)
    for u in range(n):
        for v in range(n):
            if u < v or (directed and u != v):
                g.add_edge(u, v, 1.0)
    return g
