"""Graph serialisation: whitespace edge lists and a JSON property format.

Edge-list format (one edge per line)::

    # directed: true        <- optional header comment
    u v [weight]

JSON format stores directedness, node labels and edge weights/labels and
round-trips property graphs exactly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.errors import GraphError
from repro.graph.graph import Graph

PathLike = Union[str, Path]


def write_edge_list(g: Graph, path: PathLike) -> None:
    """Write ``g`` as a whitespace edge list with a directedness header.

    Isolated nodes are written as single-token lines so they round-trip.
    """
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"# directed: {'true' if g.directed else 'false'}\n")
        for u, v, w in g.edges():
            fh.write(f"{u} {v} {w}\n")
        for v in g.nodes:
            if g.out_degree(v) == 0 and g.in_degree(v) == 0:
                fh.write(f"{v}\n")


def read_edge_list(path: PathLike, directed: bool = None) -> Graph:
    """Read an edge list written by :func:`write_edge_list`.

    Node ids are parsed as ``int`` when possible, otherwise kept as strings.
    ``directed`` overrides the header when given.
    """
    header_directed = None
    edges = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                lowered = line.lower()
                if "directed:" in lowered:
                    header_directed = "true" in lowered
                continue
            parts = line.split()
            if len(parts) == 1:
                edges.append((_parse_node(parts[0]), None, None))
            elif len(parts) in (2, 3):
                u, v = (_parse_node(parts[0]), _parse_node(parts[1]))
                w = float(parts[2]) if len(parts) == 3 else 1.0
                edges.append((u, v, w))
            else:
                raise GraphError(
                    f"{path}:{lineno}: expected 'u v [w]' or 'v', "
                    f"got {line!r}")
    if directed is None:
        directed = header_directed if header_directed is not None else True
    g = Graph(directed=directed)
    for u, v, w in edges:
        if v is None:
            g.add_node(u)
        else:
            g.add_edge(u, v, w)
    return g


def _parse_node(token: str):
    try:
        return int(token)
    except ValueError:
        return token


def write_json(g: Graph, path: PathLike) -> None:
    """Write the full property graph (labels included) as JSON."""
    doc = {
        "directed": g.directed,
        "nodes": [{"id": _encode(v), "label": g.node_label(v)}
                  for v in g.nodes],
        "edges": [{"u": _encode(u), "v": _encode(v), "w": w,
                   "label": g.edge_label(u, v)}
                  for u, v, w in g.edges()],
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)


def read_json(path: PathLike) -> Graph:
    """Read a property graph written by :func:`write_json`."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    g = Graph(directed=bool(doc["directed"]))
    for nd in doc["nodes"]:
        g.add_node(_decode(nd["id"]), nd.get("label"))
    for ed in doc["edges"]:
        g.add_edge(_decode(ed["u"]), _decode(ed["v"]), ed.get("w", 1.0),
                   ed.get("label"))
    return g


def _encode(v):
    """JSON-encode a node id; tuples become tagged lists."""
    if isinstance(v, tuple):
        return {"__tuple__": [_encode(x) for x in v]}
    return v


def _decode(v):
    if isinstance(v, dict) and "__tuple__" in v:
        return tuple(_decode(x) for x in v["__tuple__"])
    return v
