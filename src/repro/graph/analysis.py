"""Sequential reference algorithms and graph statistics.

These single-machine implementations serve three roles:

1. Ground truth for the parallel PIE programs (tests assert that every
   AAP/BSP/AP/SSP run reproduces these answers — the Church–Rosser property).
2. The "single-thread" baseline of the paper's Exp-1.
3. Workload statistics (degree skew, components) used when building benches.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.errors import GraphError
from repro.graph.graph import Graph, Node

INF = math.inf


def _is_csr(g) -> bool:
    """True for :class:`~repro.graph.csr.CompactGraph`-like backends.

    The zero-copy accessors (``out_arrays``/``out_indptr``) let the
    reference algorithms skip the per-call ``tolist()+zip``
    materialisation of :meth:`out_edges`.
    """
    return hasattr(g, "out_arrays")


def dijkstra(g: Graph, source: Node) -> Dict[Node, float]:
    """Single-source shortest distances with a binary heap.

    Unreachable nodes map to ``math.inf``.  Edge weights must be positive.
    """
    if not g.has_node(source):
        raise GraphError(f"unknown source: {source!r}")
    if _is_csr(g):
        return _dijkstra_csr(g, source)
    dist: Dict[Node, float] = {v: INF for v in g.nodes}
    dist[source] = 0.0
    heap: List[Tuple[float, int, Node]] = [(0.0, 0, source)]
    seq = 1
    while heap:
        d, _, v = heapq.heappop(heap)
        if d > dist[v]:
            continue
        for u, w in g.out_edges(v):
            if w < 0:
                raise GraphError("Dijkstra requires non-negative weights")
            nd = d + w
            if nd < dist[u]:
                dist[u] = nd
                heapq.heappush(heap, (nd, seq, u))
                seq += 1
    return dist


def _dijkstra_csr(g, source: int) -> Dict[Node, float]:
    """Dijkstra over zero-copy CSR views: same floats, no edge tuples."""
    import numpy as np
    n = g.num_nodes
    dist = np.full(n, INF, dtype=np.float64)
    dist[source] = 0.0
    if g.out_weights.size and float(g.out_weights.min()) < 0:
        raise GraphError("Dijkstra requires non-negative weights")
    heap: List[Tuple[float, int, int]] = [(0.0, 0, source)]
    seq = 1
    while heap:
        d, _, v = heapq.heappop(heap)
        if d > dist[v]:
            continue
        nbrs, wts = g.out_arrays(v)
        nds = d + wts
        better = np.nonzero(nds < dist[nbrs])[0]
        for i in better.tolist():
            u = int(nbrs[i])
            nd = float(nds[i])
            if nd < dist[u]:
                dist[u] = nd
                heapq.heappush(heap, (nd, seq, u))
                seq += 1
    return dict(enumerate(dist.tolist()))


def connected_components(g: Graph) -> Dict[Node, Node]:
    """Map each node to the minimum node id of its (weakly)
    connected component.

    Works on the undirected view of directed graphs, matching the paper's CC.
    Node ids must be totally ordered for ``min`` to be defined.
    """
    if _is_csr(g):
        return _connected_components_csr(g)
    seen: Set[Node] = set()
    comp: Dict[Node, Node] = {}
    for start in g.nodes:
        if start in seen:
            continue
        members: List[Node] = []
        queue = deque([start])
        seen.add(start)
        while queue:
            v = queue.popleft()
            members.append(v)
            for u, _ in g.out_edges(v):
                if u not in seen:
                    seen.add(u)
                    queue.append(u)
            if g.directed:
                for u, _ in g.in_edges(v):
                    if u not in seen:
                        seen.add(u)
                        queue.append(u)
        cid = min(members)
        for v in members:
            comp[v] = cid
    return comp


def _connected_components_csr(g) -> Dict[Node, Node]:
    """Min-label propagation over CSR slices (weakly connected)."""
    import numpy as np
    from repro.graph.csr import expand_ranges
    n = g.num_nodes
    labels = np.arange(n, dtype=np.int64)
    dirs = [(g.out_indptr, g.out_indices)]
    if g.directed:
        dirs.append((g.in_indptr, g.in_indices))
    frontier = np.arange(n, dtype=np.int64)
    while frontier.size:
        updated = []
        for indptr, indices in dirs:
            starts = indptr[frontier]
            counts = indptr[frontier + 1] - starts
            eidx = expand_ranges(starts, counts)
            if eidx.size == 0:
                continue
            tgt = indices[eidx]
            lab = np.repeat(labels[frontier], counts)
            better = lab < labels[tgt]
            if not better.any():
                continue
            tgt = tgt[better]
            np.minimum.at(labels, tgt, lab[better])
            updated.append(np.unique(tgt))
        frontier = (np.unique(np.concatenate(updated)) if updated
                    else np.empty(0, dtype=np.int64))
    return dict(enumerate(labels.tolist()))


def components_as_sets(g: Graph) -> List[Set[Node]]:
    """Connected components as a list of node sets (sorted by min id)."""
    comp = connected_components(g)
    buckets: Dict[Node, Set[Node]] = {}
    for v, cid in comp.items():
        buckets.setdefault(cid, set()).add(v)
    return [buckets[cid] for cid in sorted(buckets)]


def pagerank(g: Graph, damping: float = 0.85, epsilon: float = 1e-9,
             max_iter: int = 10_000) -> Dict[Node, float]:
    """Reference PageRank by Jacobi iteration of
    ``P_v = d*sum(P_u/N_u) + (1-d)``.

    This is the paper's (non-normalised, Maiter-style) formulation, where every
    node contributes a constant ``(1-d)`` teleport mass; dangling nodes simply
    leak their mass.  Iterates until the L1 change drops below ``epsilon``.
    """
    if _is_csr(g):
        return _pagerank_csr(g, damping, epsilon, max_iter)
    nodes = list(g.nodes)
    score = {v: 1.0 - damping for v in nodes}
    for _ in range(max_iter):
        nxt = {v: 1.0 - damping for v in nodes}
        for v in nodes:
            deg = g.out_degree(v)
            if deg == 0:
                continue
            share = damping * score[v] / deg
            for u, _ in g.out_edges(v):
                nxt[u] += share
        delta = sum(abs(nxt[v] - score[v]) for v in nodes)
        score = nxt
        if delta < epsilon:
            break
    return score


def _pagerank_csr(g, damping: float, epsilon: float,
                  max_iter: int) -> Dict[Node, float]:
    """SpMV Jacobi iteration over the CSR arrays (same formulation)."""
    import numpy as np
    n = g.num_nodes
    indptr = g.out_indptr
    indices = g.out_indices
    degs = np.diff(indptr).astype(np.float64)
    base = 1.0 - damping
    score = np.full(n, base, dtype=np.float64)
    safe = np.where(degs > 0, degs, 1.0)
    for _ in range(max_iter):
        share = np.where(degs > 0, damping * score / safe, 0.0)
        nxt = np.bincount(indices,
                          weights=np.repeat(share, np.diff(indptr)),
                          minlength=n)
        nxt += base
        delta = float(np.abs(nxt - score).sum())
        score = nxt
        if delta < epsilon:
            break
    return dict(enumerate(score.tolist()))


def bfs_levels(g: Graph, source: Node) -> Dict[Node, int]:
    """Hop distance from ``source``; unreachable nodes are absent."""
    if not g.has_node(source):
        raise GraphError(f"unknown source: {source!r}")
    if _is_csr(g):
        return _bfs_levels_csr(g, source)
    level = {source: 0}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for u, _ in g.out_edges(v):
            if u not in level:
                level[u] = level[v] + 1
                queue.append(u)
    return level


def _bfs_levels_csr(g, source: int) -> Dict[Node, int]:
    """Frontier-at-a-time BFS over the CSR arrays."""
    import numpy as np
    from repro.graph.csr import expand_ranges
    n = g.num_nodes
    level = np.full(n, -1, dtype=np.int64)
    level[source] = 0
    frontier = np.array([source], dtype=np.int64)
    depth = 0
    indptr = g.out_indptr
    indices = g.out_indices
    while frontier.size:
        depth += 1
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        eidx = expand_ranges(starts, counts)
        if eidx.size == 0:
            break
        nbrs = np.unique(indices[eidx])
        frontier = nbrs[level[nbrs] < 0]
        level[frontier] = depth
    reached = np.nonzero(level >= 0)[0]
    return dict(zip(reached.tolist(), level[reached].tolist()))


def degree_histogram(g: Graph) -> Dict[int, int]:
    """Out-degree -> count histogram."""
    if _is_csr(g):
        import numpy as np
        degs, counts = np.unique(np.diff(g.out_indptr),
                                 return_counts=True)
        return dict(zip(degs.tolist(), counts.tolist()))
    hist: Dict[int, int] = {}
    for v in g.nodes:
        d = g.out_degree(v)
        hist[d] = hist.get(d, 0) + 1
    return hist


def degree_skew(g: Graph) -> float:
    """Max out-degree divided by mean out-degree (1.0 = perfectly uniform)."""
    if _is_csr(g):
        import numpy as np
        arr = np.diff(g.out_indptr)
        if arr.size == 0:
            return 1.0
        mean = float(arr.mean())
        return float(arr.max()) / mean if mean > 0 else 1.0
    degs = [g.out_degree(v) for v in g.nodes]
    if not degs:
        return 1.0
    mean = sum(degs) / len(degs)
    return max(degs) / mean if mean > 0 else 1.0


def diameter_estimate(g: Graph, samples: int = 4) -> int:
    """Lower-bound estimate of the diameter via repeated BFS sweeps."""
    nodes = list(g.nodes)
    if not nodes:
        return 0
    best = 0
    v = nodes[0]
    for _ in range(max(1, samples)):
        levels = bfs_levels(g, v)
        if not levels:
            break
        far, depth = max(levels.items(), key=lambda kv: kv[1])
        best = max(best, depth)
        v = far
    return best


def rmse(predicted: Dict[Tuple[Node, Node], float],
         actual: Iterable[Tuple[Node, Node, float]]) -> float:
    """Root mean square error of predicted vs actual edge ratings."""
    total = 0.0
    count = 0
    for u, p, r in actual:
        key = (u, p)
        if key not in predicted:
            continue
        total += (predicted[key] - r) ** 2
        count += 1
    if count == 0:
        return 0.0
    return math.sqrt(total / count)
