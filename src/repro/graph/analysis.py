"""Sequential reference algorithms and graph statistics.

These single-machine implementations serve three roles:

1. Ground truth for the parallel PIE programs (tests assert that every
   AAP/BSP/AP/SSP run reproduces these answers — the Church–Rosser property).
2. The "single-thread" baseline of the paper's Exp-1.
3. Workload statistics (degree skew, components) used when building benches.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.errors import GraphError
from repro.graph.graph import Graph, Node

INF = math.inf


def dijkstra(g: Graph, source: Node) -> Dict[Node, float]:
    """Single-source shortest distances with a binary heap.

    Unreachable nodes map to ``math.inf``.  Edge weights must be positive.
    """
    if not g.has_node(source):
        raise GraphError(f"unknown source: {source!r}")
    dist: Dict[Node, float] = {v: INF for v in g.nodes}
    dist[source] = 0.0
    heap: List[Tuple[float, int, Node]] = [(0.0, 0, source)]
    seq = 1
    while heap:
        d, _, v = heapq.heappop(heap)
        if d > dist[v]:
            continue
        for u, w in g.out_edges(v):
            if w < 0:
                raise GraphError("Dijkstra requires non-negative weights")
            nd = d + w
            if nd < dist[u]:
                dist[u] = nd
                heapq.heappush(heap, (nd, seq, u))
                seq += 1
    return dist


def connected_components(g: Graph) -> Dict[Node, Node]:
    """Map each node to the minimum node id of its (weakly)
    connected component.

    Works on the undirected view of directed graphs, matching the paper's CC.
    Node ids must be totally ordered for ``min`` to be defined.
    """
    seen: Set[Node] = set()
    comp: Dict[Node, Node] = {}
    for start in g.nodes:
        if start in seen:
            continue
        members: List[Node] = []
        queue = deque([start])
        seen.add(start)
        while queue:
            v = queue.popleft()
            members.append(v)
            for u, _ in g.out_edges(v):
                if u not in seen:
                    seen.add(u)
                    queue.append(u)
            if g.directed:
                for u, _ in g.in_edges(v):
                    if u not in seen:
                        seen.add(u)
                        queue.append(u)
        cid = min(members)
        for v in members:
            comp[v] = cid
    return comp


def components_as_sets(g: Graph) -> List[Set[Node]]:
    """Connected components as a list of node sets (sorted by min id)."""
    comp = connected_components(g)
    buckets: Dict[Node, Set[Node]] = {}
    for v, cid in comp.items():
        buckets.setdefault(cid, set()).add(v)
    return [buckets[cid] for cid in sorted(buckets)]


def pagerank(g: Graph, damping: float = 0.85, epsilon: float = 1e-9,
             max_iter: int = 10_000) -> Dict[Node, float]:
    """Reference PageRank by Jacobi iteration of
    ``P_v = d*sum(P_u/N_u) + (1-d)``.

    This is the paper's (non-normalised, Maiter-style) formulation, where every
    node contributes a constant ``(1-d)`` teleport mass; dangling nodes simply
    leak their mass.  Iterates until the L1 change drops below ``epsilon``.
    """
    nodes = list(g.nodes)
    score = {v: 1.0 - damping for v in nodes}
    for _ in range(max_iter):
        nxt = {v: 1.0 - damping for v in nodes}
        for v in nodes:
            deg = g.out_degree(v)
            if deg == 0:
                continue
            share = damping * score[v] / deg
            for u, _ in g.out_edges(v):
                nxt[u] += share
        delta = sum(abs(nxt[v] - score[v]) for v in nodes)
        score = nxt
        if delta < epsilon:
            break
    return score


def bfs_levels(g: Graph, source: Node) -> Dict[Node, int]:
    """Hop distance from ``source``; unreachable nodes are absent."""
    if not g.has_node(source):
        raise GraphError(f"unknown source: {source!r}")
    level = {source: 0}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for u, _ in g.out_edges(v):
            if u not in level:
                level[u] = level[v] + 1
                queue.append(u)
    return level


def degree_histogram(g: Graph) -> Dict[int, int]:
    """Out-degree -> count histogram."""
    hist: Dict[int, int] = {}
    for v in g.nodes:
        d = g.out_degree(v)
        hist[d] = hist.get(d, 0) + 1
    return hist


def degree_skew(g: Graph) -> float:
    """Max out-degree divided by mean out-degree (1.0 = perfectly uniform)."""
    degs = [g.out_degree(v) for v in g.nodes]
    if not degs:
        return 1.0
    mean = sum(degs) / len(degs)
    return max(degs) / mean if mean > 0 else 1.0


def diameter_estimate(g: Graph, samples: int = 4) -> int:
    """Lower-bound estimate of the diameter via repeated BFS sweeps."""
    nodes = list(g.nodes)
    if not nodes:
        return 0
    best = 0
    v = nodes[0]
    for _ in range(max(1, samples)):
        levels = bfs_levels(g, v)
        if not levels:
            break
        far, depth = max(levels.items(), key=lambda kv: kv[1])
        best = max(best, depth)
        v = far
    return best


def rmse(predicted: Dict[Tuple[Node, Node], float],
         actual: Iterable[Tuple[Node, Node, float]]) -> float:
    """Root mean square error of predicted vs actual edge ratings."""
    total = 0.0
    count = 0
    for u, p, r in actual:
        key = (u, p)
        if key not in predicted:
            continue
        total += (predicted[key] - r) ** 2
        count += 1
    if count == 0:
        return 0.0
    return math.sqrt(total / count)
