"""Property graph data structure.

The paper operates on graphs ``G = (V, E, L)``, directed or undirected, where
nodes and edges may carry labels (properties).  :class:`Graph` is a small,
explicit adjacency-list structure sized for simulation workloads (up to a few
hundred thousand edges).  It is deliberately mutable only during construction;
the engine treats graphs as read-only once partitioned.

Node identifiers are arbitrary hashables, though the generators in
:mod:`repro.graph.generators` use integers.  Edge weights default to ``1.0``.
"""

from __future__ import annotations

from typing import (Any, Dict, Hashable, Iterable, Iterator, List,
                    Optional, Tuple)

from repro.errors import GraphError

Node = Hashable
Edge = Tuple[Node, Node]


class Graph:
    """A directed or undirected property graph.

    Parameters
    ----------
    directed:
        If ``True`` edges are one-way; otherwise each added edge is traversable
        in both directions (stored once, mirrored in adjacency).
    """

    __slots__ = ("directed", "_adj", "_radj", "_node_labels", "_edge_weights",
                 "_edge_labels", "_num_edges")

    def __init__(self, directed: bool = True):
        self.directed = directed
        # node -> list of (neighbour, weight) for outgoing edges
        self._adj: Dict[Node, List[Tuple[Node, float]]] = {}
        # node -> list of (neighbour, weight) for incoming edges
        # (directed only)
        self._radj: Dict[Node, List[Tuple[Node, float]]] = {}
        self._node_labels: Dict[Node, Any] = {}
        self._edge_weights: Dict[Edge, float] = {}
        self._edge_labels: Dict[Edge, Any] = {}
        self._num_edges = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, v: Node, label: Any = None) -> None:
        """Add node ``v`` (idempotent); optionally set its label."""
        if v not in self._adj:
            self._adj[v] = []
            self._radj[v] = []
        if label is not None:
            self._node_labels[v] = label

    def add_edge(self, u: Node, v: Node, weight: float = 1.0,
                 label: Any = None) -> None:
        """Add edge ``(u, v)`` with ``weight``.

        Endpoints are added implicitly.  Parallel edges are collapsed: adding
        an existing edge overwrites its weight and label.
        """
        if u == v:
            raise GraphError(f"self-loops are not supported: {u!r}")
        self.add_node(u)
        self.add_node(v)
        key = self._edge_key(u, v)
        if key not in self._edge_weights:
            self._adj[u].append((v, weight))
            self._radj[v].append((u, weight))
            if not self.directed:
                self._adj[v].append((u, weight))
                self._radj[u].append((v, weight))
            self._num_edges += 1
        elif weight != self._edge_weights[key]:
            self._rewrite_weight(u, v, weight)
        self._edge_weights[key] = weight
        if label is not None:
            self._edge_labels[key] = label

    def _rewrite_weight(self, u: Node, v: Node, weight: float) -> None:
        """Update the stored adjacency weight of an existing edge."""
        self._adj[u] = [(w, weight if w == v else wt)
                        for w, wt in self._adj[u]]
        self._radj[v] = [(w, weight if w == u else wt)
                         for w, wt in self._radj[v]]
        if not self.directed:
            self._adj[v] = [(w, weight if w == u else wt)
                            for w, wt in self._adj[v]]
            self._radj[u] = [(w, weight if w == v else wt)
                             for w, wt in self._radj[u]]

    def _edge_key(self, u: Node, v: Node) -> Edge:
        if self.directed:
            return (u, v)
        # canonical order for undirected edges so (u,v) == (v,u)
        return (u, v) if repr(u) <= repr(v) else (v, u)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Iterable[Node]:
        return self._adj.keys()

    @property
    def num_nodes(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def has_node(self, v: Node) -> bool:
        return v in self._adj

    def has_edge(self, u: Node, v: Node) -> bool:
        return self._edge_key(u, v) in self._edge_weights

    def out_edges(self, v: Node) -> List[Tuple[Node, float]]:
        """Outgoing ``(neighbour, weight)`` pairs of ``v``."""
        try:
            return self._adj[v]
        except KeyError:
            raise GraphError(f"unknown node: {v!r}") from None

    def in_edges(self, v: Node) -> List[Tuple[Node, float]]:
        """Incoming ``(neighbour, weight)`` pairs of ``v``."""
        try:
            return self._radj[v]
        except KeyError:
            raise GraphError(f"unknown node: {v!r}") from None

    def neighbors(self, v: Node) -> Iterator[Node]:
        for u, _ in self.out_edges(v):
            yield u

    def out_degree(self, v: Node) -> int:
        return len(self.out_edges(v))

    def in_degree(self, v: Node) -> int:
        return len(self.in_edges(v))

    def weight(self, u: Node, v: Node) -> float:
        try:
            return self._edge_weights[self._edge_key(u, v)]
        except KeyError:
            raise GraphError(f"unknown edge: ({u!r}, {v!r})") from None

    def node_label(self, v: Node, default: Any = None) -> Any:
        return self._node_labels.get(v, default)

    def set_node_label(self, v: Node, label: Any) -> None:
        if v not in self._adj:
            raise GraphError(f"unknown node: {v!r}")
        self._node_labels[v] = label

    def edge_label(self, u: Node, v: Node, default: Any = None) -> Any:
        return self._edge_labels.get(self._edge_key(u, v), default)

    def edges(self) -> Iterator[Tuple[Node, Node, float]]:
        """Iterate over edges once each as ``(u, v, weight)``.

        For undirected graphs each edge appears once in canonical order.
        """
        for (u, v), w in self._edge_weights.items():
            yield u, v, w

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def subgraph(self, nodes: Iterable[Node]) -> "Graph":
        """Induced subgraph over ``nodes`` (labels and weights preserved)."""
        keep = set(nodes)
        sub = Graph(directed=self.directed)
        for v in keep:
            if not self.has_node(v):
                raise GraphError(f"unknown node: {v!r}")
            sub.add_node(v, self._node_labels.get(v))
        for u, v, w in self.edges():
            if u in keep and v in keep:
                sub.add_edge(u, v, w,
                             self._edge_labels.get(self._edge_key(u, v)))
        return sub

    def reverse(self) -> "Graph":
        """Graph with all edges reversed (identity for undirected graphs)."""
        if not self.directed:
            return self.copy()
        rev = Graph(directed=True)
        for v in self.nodes:
            rev.add_node(v, self._node_labels.get(v))
        for u, v, w in self.edges():
            rev.add_edge(v, u, w, self._edge_labels.get((u, v)))
        return rev

    def as_undirected(self) -> "Graph":
        """Undirected view copy of this graph."""
        und = Graph(directed=False)
        for v in self.nodes:
            und.add_node(v, self._node_labels.get(v))
        for u, v, w in self.edges():
            if not und.has_edge(u, v):
                und.add_edge(u, v, w)
        return und

    def copy(self) -> "Graph":
        dup = Graph(directed=self.directed)
        for v in self.nodes:
            dup.add_node(v, self._node_labels.get(v))
        for u, v, w in self.edges():
            dup.add_edge(u, v, w, self._edge_labels.get(self._edge_key(u, v)))
        return dup

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __contains__(self, v: Node) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return f"Graph({kind}, nodes={self.num_nodes}, edges={self.num_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (self.directed == other.directed
                and set(self.nodes) == set(other.nodes)
                and self._edge_weights == other._edge_weights)

    def __hash__(self) -> int:  # graphs are mutable; identity hash
        return id(self)
