"""SSSP as a PIE program (paper, Section 5.1).

PEval is Dijkstra's algorithm per fragment; IncEval is the incremental
shortest-path algorithm in the Ramalingam–Reps style: when border distances
decrease, a multi-source Dijkstra re-relaxes only the affected region.  The
aggregate function is ``min``; the status variable of node ``v`` is
``dist(s, v)``.  IncEval is contracting and monotonic (distances only
decrease), so by Theorem 2 every AAP run converges to the true distances —
bounded staleness is not needed.

The priority-queue optimisation is exactly the sequential-algorithm
optimisation the paper credits for GRAPE+'s advantage over vertex-centric
systems (which relax in Bellman-Ford fashion).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Sequence, Set

from repro.core.aggregators import Min
from repro.core.pie import FragmentContext, PIEProgram
from repro.partition.fragment import Fragment, PartitionedGraph

Node = Hashable
INF = math.inf


@dataclass(frozen=True)
class SSSPQuery:
    """A single-source shortest path query."""

    source: Node


class SSSPProgram(PIEProgram):
    """PIE program for single-source shortest paths."""

    aggregator = Min()
    needs_bounded_staleness = False
    # distances come from sums over the finite set of edge weights
    finite_domain = True

    def init_values(self, frag: Fragment, query: SSSPQuery
                    ) -> Dict[Node, float]:
        return {v: (0.0 if v == query.source else INF)
                for v in frag.graph.nodes}

    # ------------------------------------------------------------------
    def peval(self, frag: Fragment, ctx: FragmentContext,
              query: SSSPQuery) -> None:
        """Dijkstra from the source, if it is local."""
        if frag.graph.has_node(query.source):
            self._dijkstra(frag, ctx, seeds={query.source})

    def inceval(self, frag: Fragment, ctx: FragmentContext,
                activated: Set[Node], query: SSSPQuery) -> None:
        """Multi-source Dijkstra seeded at the nodes whose dist decreased."""
        self._dijkstra(frag, ctx, seeds=activated)

    def _dijkstra(self, frag: Fragment, ctx: FragmentContext,
                  seeds: Set[Node]) -> None:
        g = frag.graph
        heap = []
        seq = 0
        for v in sorted(seeds, key=repr):
            d = ctx.get(v)
            if d < INF:
                heap.append((d, seq, v))
                seq += 1
        heapq.heapify(heap)
        while heap:
            d, _, v = heapq.heappop(heap)
            ctx.add_work(1)
            if d > ctx.get(v):
                continue  # stale heap entry
            # under edge-cut, a mirror's distance only feeds the owner
            # fragment via message passing (the owner holds all its edges);
            # under vertex-cut every copy relaxes the edges it holds
            if frag.cut == "edge" and v in frag.mirrors:
                continue
            for u, w in g.out_edges(v):
                ctx.add_work(1)
                nd = d + w
                if nd < ctx.get(u):
                    ctx.set(u, nd)
                    heapq.heappush(heap, (nd, seq, u))
                    seq += 1

    # ------------------------------------------------------------------
    def inc_update(self, frag: Fragment, ctx: FragmentContext,
                   inserted, query: SSSPQuery) -> Set[Node]:
        """Edge insertions only shorten paths: reseed Dijkstra from every
        inserted edge's source that already has a finite distance."""
        seeds = set()
        for u, v, w in inserted:
            if u in ctx.values and ctx.get(u) < INF:
                seeds.add(u)
            # undirected edges relax both ways
            if not frag.graph.directed and v in ctx.values \
                    and ctx.get(v) < INF:
                seeds.add(v)
        return seeds

    # ------------------------------------------------------------------
    def destinations(self, pg: PartitionedGraph, frag: Fragment,
                     v: Node) -> Sequence[int]:
        """Ship mirror updates to the owner (``C_i = F_i.O`` designated
        messages).

        Under edge-cut a node's owner holds all of its outgoing edges: an
        owned node's new distance is only useful locally, and a mirror's
        improvement is only useful to the owner — other mirror holders'
        copies feed the owner independently.  Under vertex-cut every
        replicated copy relaxes edges, so all copies exchange updates.
        """
        if frag.cut != "edge":
            return frag.locations(v)
        if v not in frag.mirrors:
            return ()
        owner = pg.owner[v]
        return (owner,) if owner != frag.fid else ()

    # ------------------------------------------------------------------
    def assemble(self, pg: PartitionedGraph,
                 contexts: Sequence[FragmentContext],
                 query: SSSPQuery) -> Dict[Node, float]:
        """dist(s, v) for every node, taken from each node's owner."""
        return {v: contexts[fid].values[v] for v, fid in pg.owner.items()}
