"""SSSP as a PIE program (paper, Section 5.1).

PEval is Dijkstra's algorithm per fragment; IncEval is the incremental
shortest-path algorithm in the Ramalingam–Reps style: when border distances
decrease, a multi-source Dijkstra re-relaxes only the affected region.  The
aggregate function is ``min``; the status variable of node ``v`` is
``dist(s, v)``.  IncEval is contracting and monotonic (distances only
decrease), so by Theorem 2 every AAP run converges to the true distances —
bounded staleness is not needed.

The priority-queue optimisation is exactly the sequential-algorithm
optimisation the paper credits for GRAPE+'s advantage over vertex-centric
systems (which relax in Bellman-Ford fashion).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Sequence, Set

from repro.core.aggregators import Min
from repro.core.pie import FragmentContext, PIEProgram
from repro.partition.fragment import Fragment, PartitionedGraph

Node = Hashable
INF = math.inf


@dataclass(frozen=True)
class SSSPQuery:
    """A single-source shortest path query."""

    source: Node


class SSSPProgram(PIEProgram):
    """PIE program for single-source shortest paths."""

    aggregator = Min()
    needs_bounded_staleness = False
    # distances come from sums over the finite set of edge weights
    finite_domain = True
    dense_capable = True
    dense_dtype = "float64"

    def init_values(self, frag: Fragment, query: SSSPQuery
                    ) -> Dict[Node, float]:
        return {v: (0.0 if v == query.source else INF)
                for v in frag.graph.nodes}

    # ------------------------------------------------------------------
    def peval(self, frag: Fragment, ctx: FragmentContext,
              query: SSSPQuery) -> None:
        """Dijkstra from the source, if it is local."""
        if frag.graph.has_node(query.source):
            self._dijkstra(frag, ctx, seeds={query.source})

    def inceval(self, frag: Fragment, ctx: FragmentContext,
                activated: Set[Node], query: SSSPQuery) -> None:
        """Multi-source Dijkstra seeded at the nodes whose dist decreased."""
        self._dijkstra(frag, ctx, seeds=activated)

    def _dijkstra(self, frag: Fragment, ctx: FragmentContext,
                  seeds: Set[Node]) -> None:
        g = frag.graph
        heap = []
        seq = 0
        # seeds go in unsorted: heapify orders by distance and the final
        # fixpoint is seed-order independent (ties only affect visit
        # order, never the min over path sums)
        for v in seeds:
            d = ctx.get(v)
            if d < INF:
                heap.append((d, seq, v))
                seq += 1
        heapq.heapify(heap)
        while heap:
            d, _, v = heapq.heappop(heap)
            ctx.add_work(1)
            if d > ctx.get(v):
                continue  # stale heap entry
            # under edge-cut, a mirror's distance only feeds the owner
            # fragment via message passing (the owner holds all its edges);
            # under vertex-cut every copy relaxes the edges it holds
            if frag.cut == "edge" and v in frag.mirrors:
                continue
            for u, w in g.out_edges(v):
                ctx.add_work(1)
                nd = d + w
                if nd < ctx.get(u):
                    ctx.set(u, nd)
                    heapq.heappush(heap, (nd, seq, u))
                    seq += 1

    # ------------------------------------------------------------------
    # vectorized kernels (frontier-based relaxation over the CSR view)
    # ------------------------------------------------------------------
    def dense_seed(self, frag: Fragment, ctx: Any,
                   query: SSSPQuery) -> None:
        ctx.array.fill(INF)
        src = ctx.view.lid_of.get(query.source)
        if src is not None:
            ctx.array[src] = 0.0

    def dense_peval(self, frag: Fragment, ctx: Any,
                    query: SSSPQuery) -> None:
        import numpy as np
        src = ctx.view.lid_of.get(query.source)
        if src is not None:
            self._dense_relax(frag, ctx,
                              np.asarray([src], dtype=np.int64))

    def dense_inceval(self, frag: Fragment, ctx: Any, activated_lids,
                      query: SSSPQuery) -> None:
        self._dense_relax(frag, ctx, activated_lids)

    def _dense_relax(self, frag: Fragment, ctx: Any, seeds) -> None:
        """Wave relaxation to the local fixpoint via ``np.minimum.at``.

        Computes the same min over left-to-right path sums as
        :meth:`_dijkstra` (floats included: ``min`` is exact and each
        path's sum is evaluated in the same order), so the cross-check
        against the generic path is exact equality.
        """
        import numpy as np
        from repro.graph.csr import expand_ranges
        csr = ctx.view.csr
        indptr = csr.out_indptr
        indices = csr.out_indices
        weights = csr.out_weights
        sources = csr.out_sources
        dist = ctx.array
        # boolean scatter + nonzero dedups seeds and each wave's updates
        # far cheaper than hash-based np.unique on the raw arrays
        upd = np.zeros(dist.size, dtype=bool)
        upd[np.asarray(seeds, dtype=np.int64)] = True
        upd &= np.isfinite(dist)
        frontier = np.nonzero(upd)[0]
        # under edge-cut, mirrors never relax locally (the owner holds
        # all their out-edges); under vertex-cut every copy relaxes
        relax_ok = ctx.view.owned_mask if frag.cut == "edge" else None
        while frontier.size:
            if relax_ok is not None:
                frontier = frontier[relax_ok[frontier]]
            if frontier.size == 0:
                break
            starts = indptr[frontier]
            counts = indptr[frontier + 1] - starts
            eidx = expand_ranges(starts, counts)
            ctx.add_work(int(frontier.size + eidx.size))
            if eidx.size == 0:
                break
            tgt = indices[eidx]
            nd = dist[sources[eidx]] + weights[eidx]
            # unfiltered scatter-min + node-sized before/after compare:
            # cheaper than filtering the edge-sized candidates first
            # (see CCProgram._dense_propagate)
            prev = dist.copy()
            np.minimum.at(dist, tgt, nd)
            upd = dist < prev
            ctx.mask |= upd
            frontier = np.nonzero(upd)[0]

    # ------------------------------------------------------------------
    def inc_update(self, frag: Fragment, ctx: FragmentContext,
                   inserted, query: SSSPQuery) -> Set[Node]:
        """Edge insertions only shorten paths: reseed Dijkstra from every
        inserted edge's source that already has a finite distance."""
        seeds = set()
        for u, v, w in inserted:
            if u in ctx.values and ctx.get(u) < INF:
                seeds.add(u)
            # undirected edges relax both ways
            if not frag.graph.directed and v in ctx.values \
                    and ctx.get(v) < INF:
                seeds.add(v)
        return seeds

    # ------------------------------------------------------------------
    def destinations(self, pg: PartitionedGraph, frag: Fragment,
                     v: Node) -> Sequence[int]:
        """Ship mirror updates to the owner (``C_i = F_i.O`` designated
        messages).

        Under edge-cut a node's owner holds all of its outgoing edges: an
        owned node's new distance is only useful locally, and a mirror's
        improvement is only useful to the owner — other mirror holders'
        copies feed the owner independently.  Under vertex-cut every
        replicated copy relaxes edges, so all copies exchange updates.
        """
        if frag.cut != "edge":
            return frag.locations(v)
        if v not in frag.mirrors:
            return ()
        owner = pg.owner[v]
        return (owner,) if owner != frag.fid else ()

    # ------------------------------------------------------------------
    def assemble(self, pg: PartitionedGraph,
                 contexts: Sequence[FragmentContext],
                 query: SSSPQuery) -> Dict[Node, float]:
        """dist(s, v) for every node, taken from each node's owner."""
        return {v: contexts[fid].values[v] for v, fid in pg.owner.items()}
