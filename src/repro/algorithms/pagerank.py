"""PageRank as a PIE program (paper, Section 5.3).

Delta-based accumulative formulation (as in Maiter): each node ``v`` keeps a
score ``P_v`` and a pending update ``x_v`` (the status variable / update
parameter).  Processing ``v`` adds ``x_v`` to ``P_v`` and pushes
``d * x_v / N_v`` into each successor's pending update; ``f_aggr`` is *sum*.
Messages carry pending deltas of mirror copies, which the owner consumes
exactly once (ship-and-reset) — this is the accumulative semantics.

Correctness does not need bounded staleness: every path contribution
``p(v)`` is added to ``P_v`` at most once (paper's remark in Section 5.3),
so all runs converge to the same scores up to the tolerance ``epsilon``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Sequence, Set

from repro.core.aggregators import Sum
from repro.core.pie import FragmentContext, PIEProgram
from repro.errors import ProgramError
from repro.partition.fragment import Fragment, PartitionedGraph

Node = Hashable


@dataclass(frozen=True)
class PageRankQuery:
    """PageRank with damping ``d`` and convergence threshold ``epsilon``.

    ``epsilon`` bounds the total residual mass left unpropagated; each node
    stops propagating once its pending update falls below
    ``epsilon / num_nodes``.  Pass ``num_nodes`` (|V| of the whole graph) so
    the per-node threshold is independent of how the graph is fragmented;
    without it each fragment falls back to its local node count, which is
    slightly stricter.
    """

    damping: float = 0.85
    epsilon: float = 1e-3
    num_nodes: Optional[int] = None


class PageRankProgram(PIEProgram):
    """PIE program for delta-accumulative PageRank."""

    aggregator = Sum()
    needs_bounded_staleness = False
    finite_domain = False  # real-valued scores; termination via epsilon
    dense_capable = True
    dense_dtype = "float64"

    def init_values(self, frag: Fragment, query: PageRankQuery
                    ) -> Dict[Node, float]:
        if frag.cut != "edge":
            raise ProgramError(
                "PageRankProgram requires an edge-cut partition (an owner "
                "holds all out-edges of its nodes)")
        # pending update x_v: (1 - d) for owned nodes, 0 for mirror copies
        return {v: (0.0 if v in frag.mirrors else 1.0 - query.damping)
                for v in frag.graph.nodes}

    # ------------------------------------------------------------------
    def peval(self, frag: Fragment, ctx: FragmentContext,
              query: PageRankQuery) -> None:
        ctx.scratch["score"] = {v: 0.0 for v in frag.owned}
        denom = query.num_nodes if query.num_nodes \
            else frag.graph.num_nodes
        ctx.scratch["eps_node"] = query.epsilon / max(denom, 1)
        self._propagate(frag, ctx, query, seeds=frag.owned)

    def inceval(self, frag: Fragment, ctx: FragmentContext,
                activated: Set[Node], query: PageRankQuery) -> None:
        # activated nodes are owned nodes whose pending delta grew from
        # incoming mirror deltas
        self._propagate(frag, ctx, query, seeds=activated)

    def _propagate(self, frag: Fragment, ctx: FragmentContext,
                   query: PageRankQuery, seeds) -> None:
        """Local fixpoint: drain pending updates above the node threshold.

        Breadth-first (Jacobi-style) waves: a node is processed at most once
        per wave, after the whole previous wave's contributions have been
        accumulated into its pending update.  Depth-first ordering would
        reprocess nodes with partial deltas and multiply the work.
        """
        g = frag.graph
        score = ctx.scratch["score"]
        eps_node = ctx.scratch["eps_node"]
        d = query.damping
        current = sorted((v for v in seeds if v in frag.owned), key=repr)
        while current:
            next_wave = set()
            for v in current:
                delta = ctx.get(v)
                if abs(delta) <= eps_node:
                    continue
                ctx.set(v, 0.0)
                score[v] += delta
                ctx.add_work(1)
                deg = g.out_degree(v)
                if deg == 0:
                    continue
                share = d * delta / deg
                for u, _ in g.out_edges(v):
                    ctx.set(u, ctx.get(u) + share)
                    ctx.add_work(1)
                    if u in frag.owned and abs(ctx.get(u)) > eps_node:
                        next_wave.add(u)
            current = sorted(next_wave, key=repr)

    # ------------------------------------------------------------------
    # vectorized kernels (SpMV-style delta accumulation)
    # ------------------------------------------------------------------
    def dense_seed(self, frag: Fragment, ctx: Any,
                   query: PageRankQuery) -> None:
        import numpy as np
        if frag.cut != "edge":
            raise ProgramError(
                "PageRankProgram requires an edge-cut partition (an owner "
                "holds all out-edges of its nodes)")
        # pending update x_v: (1 - d) for owned nodes, 0 for mirror copies
        ctx.array[:] = np.where(ctx.view.owned_mask,
                                1.0 - query.damping, 0.0)

    def dense_peval(self, frag: Fragment, ctx: Any,
                    query: PageRankQuery) -> None:
        import numpy as np
        view = ctx.view
        ctx.scratch["score_arr"] = np.zeros(len(view), dtype=np.float64)
        denom = query.num_nodes if query.num_nodes \
            else frag.graph.num_nodes
        ctx.scratch["eps_node"] = query.epsilon / max(denom, 1)
        self._dense_propagate(frag, ctx, query,
                              np.nonzero(view.owned_mask)[0])

    def dense_inceval(self, frag: Fragment, ctx: Any, activated_lids,
                      query: PageRankQuery) -> None:
        self._dense_propagate(frag, ctx, query, activated_lids)

    def _dense_propagate(self, frag: Fragment, ctx: Any, query:
                         PageRankQuery, seeds) -> None:
        """Drain pending deltas in Jacobi waves via ``np.add.at``.

        Floating-point accumulation order differs from the generic path,
        so the cross-check is tolerance-based (within ``epsilon``), not
        exact — the paper's accuracy argument bounds both the same way.
        """
        import numpy as np
        from repro.graph.csr import expand_ranges
        view = ctx.view
        csr = view.csr
        indptr = csr.out_indptr
        indices = csr.out_indices
        pend = ctx.array
        score = ctx.scratch["score_arr"]
        eps_node = ctx.scratch["eps_node"]
        d = query.damping
        owned = view.owned_mask
        degrees = np.diff(indptr)
        touched = np.zeros(pend.size, dtype=bool)
        touched[np.asarray(seeds, dtype=np.int64)] = True
        touched &= owned
        current = np.nonzero(touched)[0]
        while current.size:
            active = current[np.abs(pend[current]) > eps_node]
            if active.size == 0:
                break
            delta = pend[active].copy()
            pend[active] = 0.0
            score[active] += delta
            ctx.add_work(int(active.size))
            has_out = degrees[active] > 0
            srcs = active[has_out]
            if srcs.size == 0:
                break
            dsub = delta[has_out]
            counts = degrees[srcs]
            eidx = expand_ranges(indptr[srcs], counts)
            tgt = indices[eidx]
            share = np.repeat(d * dsub / counts, counts)
            np.add.at(pend, tgt, share)
            ctx.mask[tgt] = True
            ctx.add_work(int(tgt.size))
            touched[:] = False
            touched[tgt] = True
            touched &= owned
            nxt = np.nonzero(touched)[0]
            current = nxt[np.abs(pend[nxt]) > eps_node]

    def dense_emit(self, frag: Fragment, ctx: Any, lids) -> Any:
        """Ship accumulated mirror deltas and reset them (take-and-zero)."""
        delta = ctx.array[lids].copy()
        ctx.array[lids] = 0.0
        return delta

    def dense_should_ship(self, frag: Fragment, ctx: Any, lids) -> Any:
        import numpy as np
        return np.abs(ctx.array[lids]) > ctx.scratch["eps_node"]

    def dense_apply_incoming(self, frag: Fragment, ctx: Any, lids,
                             payloads) -> Any:
        import numpy as np
        np.add.at(ctx.array, lids, payloads)
        seen = np.zeros(ctx.array.size, dtype=bool)
        seen[lids] = True
        return np.nonzero(seen)[0]

    def dense_assemble(self, pg: PartitionedGraph, contexts: Sequence[Any],
                       query: PageRankQuery) -> Dict[Node, float]:
        """Final scores; residual pending mass is folded in for accuracy."""
        out: Dict[Node, float] = {}
        owner = pg.owner
        for ctx in contexts:
            fid = ctx.fragment.fid
            total = ctx.scratch["score_arr"] + ctx.array
            for i, gid in enumerate(ctx.view.nodes):
                if owner.get(gid) == fid:
                    out[gid] = float(total[i])
        return out

    # ------------------------------------------------------------------
    # accumulative message semantics
    # ------------------------------------------------------------------
    def emit(self, frag: Fragment, ctx: FragmentContext, v: Node) -> float:
        """Ship the mirror's accumulated delta and reset it to zero."""
        delta = ctx.get(v)
        ctx.set_silent(v, 0.0)
        return delta

    def ship_set(self, frag: Fragment):
        """Only mirror copies carry outbound deltas."""
        return frozenset(v for v in frag.mirrors if frag.locations(v))

    def destinations(self, pg: PartitionedGraph, frag: Fragment,
                     v: Node) -> Sequence[int]:
        """A delta must be consumed exactly once: ship to the owner only."""
        owner = pg.owner[v]
        return (owner,) if owner != frag.fid else ()

    def should_ship(self, frag: Fragment, ctx: FragmentContext,
                    v: Node) -> bool:
        """Hold back sub-threshold mirror deltas (Maiter-style).

        The unshipped residual per mirror is bounded by the node threshold,
        the same bound already accepted for owned nodes, so accuracy
        stays within ``epsilon`` while traffic drops dramatically.
        """
        return abs(ctx.get(v)) > ctx.scratch["eps_node"]

    def apply_incoming(self, frag: Fragment, ctx: FragmentContext, v: Node,
                       payloads: Sequence[float]) -> bool:
        total = sum(payloads)
        if total == 0.0:
            return False
        ctx.set(v, ctx.get(v) + total)
        return True

    # ------------------------------------------------------------------
    def assemble(self, pg: PartitionedGraph,
                 contexts: Sequence[FragmentContext],
                 query: PageRankQuery) -> Dict[Node, float]:
        """Final scores; residual pending mass is folded in for accuracy."""
        out: Dict[Node, float] = {}
        for v, fid in pg.owner.items():
            ctx = contexts[fid]
            out[v] = ctx.scratch["score"][v] + ctx.values[v]
        return out
