"""PIE programs: the paper's four computations plus extra lattice demos."""

from repro.algorithms.cc import CCProgram, CCQuery, components_from_answer
from repro.algorithms.cf import CFProgram, CFQuery
from repro.algorithms.pagerank import PageRankProgram, PageRankQuery
from repro.algorithms.reachability import ReachabilityProgram, ReachQuery
from repro.algorithms.sssp import SSSPProgram, SSSPQuery
from repro.algorithms.widest_path import (WidestPathProgram,
                                          WidestPathQuery,
                                          reference_widest_paths)

__all__ = ["SSSPProgram", "SSSPQuery", "CCProgram", "CCQuery",
           "components_from_answer", "PageRankProgram", "PageRankQuery",
           "CFProgram", "CFQuery", "ReachabilityProgram", "ReachQuery",
           "WidestPathProgram", "WidestPathQuery",
           "reference_widest_paths"]
