"""Collaborative filtering as a PIE program (paper, Section 5.2).

Mini-batched stochastic gradient descent for matrix factorisation: each
fragment holds its users' factor vectors privately and a local copy of every
item factor its ratings touch.  One PEval/IncEval round = one local SGD
epoch.  Accumulated item-factor gradients are the update parameters: after
each epoch a fragment ships its accumulated deltas to every other holder of
the item, who folds them into its copy (the paper's weighted-sum aggregation
of gradients computed at other workers).

CF is the one program in the paper that *requires bounded staleness*
(:attr:`CFProgram.needs_bounded_staleness`): under unbounded asynchrony a
fast worker could run most of its epochs on stale factors.  The SSP/AAP
staleness predicate enforces the bound ``c``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Sequence, Set, Tuple

from repro.core.aggregators import Sum
from repro.core.pie import FragmentContext, PIEProgram
from repro.partition.fragment import Fragment, PartitionedGraph

Node = Hashable
Vector = Tuple[float, ...]


@dataclass(frozen=True)
class CFQuery:
    """Matrix-factorisation hyper-parameters."""

    rank: int = 4
    learning_rate: float = 0.02
    regularization: float = 0.05
    epochs: int = 10
    seed: int = 0


def _init_vector(node: Node, rank: int, seed: int) -> List[float]:
    rng = random.Random((seed, repr(node)).__repr__())
    return [rng.uniform(0.05, 0.25) for _ in range(rank)]


def _is_item(v: Node) -> bool:
    return isinstance(v, tuple) and len(v) == 2 and v[0] == "p"


def _is_user(v: Node) -> bool:
    return isinstance(v, tuple) and len(v) == 2 and v[0] == "u"


class CFProgram(PIEProgram):
    """PIE program for SGD collaborative filtering.

    Node convention follows :func:`repro.graph.generators.bipartite_ratings`:
    users are ``("u", i)``, items are ``("p", j)``; edge weights are ratings.
    """

    aggregator = Sum()
    needs_bounded_staleness = True
    default_staleness_bound = 2
    finite_domain = False
    # destinations() depends on self.aggregation, so engines must not
    # memoize routing per program *class*
    cacheable_routes = False

    #: message aggregation schemes: "gossip" ships every fragment's deltas
    #: to every co-holder (fast convergence per epoch, more traffic);
    #: "server" is hierarchical owner aggregation (mirrors send deltas to
    #: the item's owner, the owner broadcasts refreshed factors — the
    #: decentralised parameter-server layout, ~h/2 times less traffic)
    AGGREGATION_SCHEMES = ("gossip", "server")

    def __init__(self, rank: int = 4, aggregation: str = "gossip"):
        if aggregation not in self.AGGREGATION_SCHEMES:
            raise ValueError(f"aggregation must be one of "
                             f"{self.AGGREGATION_SCHEMES}")
        self._rank = rank
        self.aggregation = aggregation

    def value_size_bytes(self, value: Any) -> int:
        return 8 * self._rank

    def init_values(self, frag: Fragment, query: CFQuery) -> Dict[Node, int]:
        # the tracked "value" per node is the epoch count of its last local
        # update; factor vectors live in scratch (they are the real state)
        return {v: 0 for v in frag.graph.nodes}

    # ------------------------------------------------------------------
    def peval(self, frag: Fragment, ctx: FragmentContext,
              query: CFQuery) -> None:
        factors: Dict[Node, List[float]] = {}
        for v in frag.graph.nodes:
            factors[v] = _init_vector(v, query.rank, query.seed)
        ctx.scratch["factors"] = factors
        ctx.scratch["deltas"] = {}
        ctx.scratch["epochs_done"] = 0
        # training edges owned by this fragment: those whose user is owned
        edges = [(u, p, r) for u, p, r in frag.graph.edges()
                 if _is_user(u) and u in frag.owned]
        edges += [(p, u, r) for u, p, r in frag.graph.edges()
                  if _is_user(p) and p in frag.owned]
        # normalise to (user, item, rating) and sort for determinism
        ctx.scratch["edges"] = sorted(
            ((u, p, r) if _is_user(u) else (p, u, r)) for u, p, r in edges)
        self._epoch(frag, ctx, query)

    def inceval(self, frag: Fragment, ctx: FragmentContext,
                activated: Set[Node], query: CFQuery) -> None:
        if ctx.scratch["epochs_done"] >= query.epochs:
            return  # training finished; absorb remaining gradients silently
        self._epoch(frag, ctx, query)

    def _epoch(self, frag: Fragment, ctx: FragmentContext,
               query: CFQuery) -> None:
        """One pass of SGD over the local training edges."""
        factors = ctx.scratch["factors"]
        deltas: Dict[Node, List[float]] = ctx.scratch["deltas"]
        lr = query.learning_rate
        reg = query.regularization
        epoch = ctx.scratch["epochs_done"] + 1
        for u, p, rating in ctx.scratch["edges"]:
            fu = factors[u]
            fp = factors[p]
            pred = sum(a * b for a, b in zip(fu, fp))
            err = rating - pred
            # the gradient is accumulated for shipping; under "server"
            # aggregation an owner's canonical copy needs no accumulator
            acc = None
            if self.aggregation == "gossip" or p not in frag.owned:
                acc = deltas.setdefault(p, [0.0] * query.rank)
            for k in range(query.rank):
                gu = lr * (err * fp[k] - reg * fu[k])
                gp = lr * (err * fu[k] - reg * fp[k])
                fu[k] += gu
                fp[k] += gp
                if acc is not None:
                    acc[k] += gp
            ctx.add_work(query.rank)
        ctx.scratch["epochs_done"] = epoch
        # mark every shared item this epoch touched as changed: holders
        # ship their accumulated deltas; under "server" aggregation owned
        # items additionally broadcast the refreshed factor
        for p in deltas:
            ctx.set(p, epoch)
        if self.aggregation == "server":
            for _, p, _ in ctx.scratch["edges"]:
                if p in frag.owned and frag.locations(p):
                    ctx.set(p, epoch)

    # ------------------------------------------------------------------
    # message semantics: hierarchical owner aggregation.
    # Mirror copies ship their accumulated gradient deltas to the item's
    # owner; the owner folds all deltas into the canonical factor and
    # broadcasts the refreshed vector back to every copy.  Per item and
    # epoch this costs 2*(holders-1) messages — the decentralised
    # equivalent of a parameter server sharded across the fragments.
    # ------------------------------------------------------------------
    def ship_set(self, frag: Fragment):
        return frozenset(v for v in frag.graph.nodes
                         if _is_item(v) and frag.locations(v))

    def destinations(self, pg: PartitionedGraph, frag: Fragment,
                     v: Node) -> Sequence[Node]:
        if self.aggregation == "gossip":
            return frag.locations(v)
        if v in frag.owned:
            return frag.locations(v)     # owner broadcasts the factor
        owner = pg.owner[v]
        return (owner,) if owner != frag.fid else ()

    def emit(self, frag: Fragment, ctx: FragmentContext,
             v: Node) -> Tuple[str, Vector]:
        if self.aggregation == "server" and v in frag.owned:
            return ("factor", tuple(ctx.scratch["factors"][v]))
        delta = ctx.scratch["deltas"].pop(v, None)
        if delta is None:
            delta = [0.0] * self._rank
        return ("delta", tuple(delta))

    def apply_incoming(self, frag: Fragment, ctx: FragmentContext, v: Node,
                       payloads: Sequence[Tuple[str, Vector]]) -> bool:
        vec = ctx.scratch["factors"][v]
        touched = False
        for kind, payload in payloads:
            if kind == "delta":
                # fold a worker's accumulated gradients into our copy;
                # under "server" aggregation the owner then re-broadcasts
                changed = False
                for k, dk in enumerate(payload):
                    if dk != 0.0:
                        vec[k] += dk
                        changed = True
                if changed:
                    touched = True
                    if self.aggregation == "server":
                        ctx.changed.add(v)
            else:
                # mirror side of "server" aggregation: adopt the canonical
                # factor (our shipped deltas are already folded into it)
                # plus any locally accumulated, not-yet-shipped gradients
                pending = ctx.scratch["deltas"].get(v)
                fresh = [payload[k] + (pending[k] if pending else 0.0)
                         for k in range(len(payload))]
                if vec != fresh:
                    vec[:] = fresh
                    touched = True
        return touched

    # ------------------------------------------------------------------
    def assemble(self, pg: PartitionedGraph,
                 contexts: Sequence[FragmentContext],
                 query: CFQuery) -> Dict[str, Any]:
        """Collect factors and compute the training loss (RMSE + the paper's
        regularised loss epsilon(f, E_T))."""
        user_f: Dict[Node, Vector] = {}
        item_f: Dict[Node, Vector] = {}
        for v, fid in pg.owner.items():
            vec = tuple(contexts[fid].scratch["factors"][v])
            if _is_user(v):
                user_f[v] = vec
            else:
                item_f[v] = vec
        sq_err = 0.0
        count = 0
        reg_term = 0.0
        for ctx in contexts:
            for u, p, rating in ctx.scratch["edges"]:
                fu = user_f[u]
                fp = item_f[p]
                pred = sum(a * b for a, b in zip(fu, fp))
                sq_err += (rating - pred) ** 2
                count += 1
        for vec in list(user_f.values()) + list(item_f.values()):
            reg_term += sum(x * x for x in vec)
        rmse = math.sqrt(sq_err / count) if count else 0.0
        loss = sq_err + query.regularization * reg_term
        return {"user_factors": user_f, "item_factors": item_f,
                "rmse": rmse, "loss": loss, "ratings": count}
