"""Single-source widest (bottleneck) paths as a PIE program.

A max-min lattice computation: the width of a path is its minimum edge
weight; ``width(s, v)`` is the maximum width over all paths.  The status
variable only *increases* (``f_aggr = max``), relaxation takes
``min(width(u), w(u, v))`` — a textbook monotone computation different in
shape from both SSSP (min-plus) and CC (min-label), exercising the ``Max``
aggregator end to end.  Conditions T1-T3 hold (widths come from the finite
set of edge weights), so Theorem 2 applies.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, Hashable, Sequence, Set

from repro.core.aggregators import Max
from repro.core.pie import FragmentContext, PIEProgram
from repro.partition.fragment import Fragment, PartitionedGraph

Node = Hashable


@dataclass(frozen=True)
class WidestPathQuery:
    """Maximum bottleneck width from ``source`` to every node."""

    source: Node


class WidestPathProgram(PIEProgram):
    """PIE program for single-source widest paths."""

    aggregator = Max()
    needs_bounded_staleness = False
    finite_domain = True

    def init_values(self, frag: Fragment, query: WidestPathQuery
                    ) -> Dict[Node, float]:
        return {v: (math.inf if v == query.source else 0.0)
                for v in frag.graph.nodes}

    def peval(self, frag: Fragment, ctx: FragmentContext,
              query: WidestPathQuery) -> None:
        if frag.graph.has_node(query.source):
            self._widen(frag, ctx, {query.source})

    def inceval(self, frag: Fragment, ctx: FragmentContext,
                activated: Set[Node], query: WidestPathQuery) -> None:
        self._widen(frag, ctx, activated)

    def _widen(self, frag: Fragment, ctx: FragmentContext,
               seeds: Set[Node]) -> None:
        """Widest-path Dijkstra variant: settle nodes widest-first."""
        g = frag.graph
        heap = []
        seq = 0
        for v in sorted(seeds, key=repr):
            width = ctx.get(v)
            if width > 0.0:
                heap.append((-width, seq, v))
                seq += 1
        heapq.heapify(heap)
        while heap:
            neg, _, v = heapq.heappop(heap)
            width = -neg
            ctx.add_work(1)
            if width < ctx.get(v):
                continue  # stale entry
            if frag.cut == "edge" and v in frag.mirrors:
                continue
            for u, w in g.out_edges(v):
                ctx.add_work(1)
                new_width = min(width, w)
                if new_width > ctx.get(u):
                    ctx.set(u, new_width)
                    heapq.heappush(heap, (-new_width, seq, u))
                    seq += 1

    def destinations(self, pg: PartitionedGraph, frag: Fragment,
                     v: Node) -> Sequence[int]:
        if frag.cut != "edge":
            return frag.locations(v)
        if v not in frag.mirrors:
            return ()
        owner = pg.owner[v]
        return (owner,) if owner != frag.fid else ()

    def assemble(self, pg: PartitionedGraph,
                 contexts: Sequence[FragmentContext],
                 query: WidestPathQuery) -> Dict[Node, float]:
        return {v: contexts[fid].values[v] for v, fid in pg.owner.items()}


def reference_widest_paths(graph, source) -> Dict[Node, float]:
    """Sequential reference: widest-path Dijkstra on one machine."""
    width = {v: 0.0 for v in graph.nodes}
    width[source] = math.inf
    heap = [(-math.inf, 0, source)]
    seq = 1
    while heap:
        neg, _, v = heapq.heappop(heap)
        if -neg < width[v]:
            continue
        for u, w in graph.out_edges(v):
            cand = min(-neg, w)
            if cand > width[u]:
                width[u] = cand
                heapq.heappush(heap, (-cand, seq, u))
                seq += 1
    return width
