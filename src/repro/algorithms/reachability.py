"""Single-source reachability as a PIE program.

The simplest monotone PIE program: the status variable is a boolean
("reached"), ``f_aggr`` is OR (``Max`` over ``False < True``), PEval is a
local traversal from the source, IncEval a local traversal from newly
reached border nodes.  Values live in the two-element lattice, so T1-T3
hold trivially and Theorem 2 gives Church-Rosser convergence under every
model — this is the canonical correctness demo for the framework.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Sequence, Set

from repro.core.aggregators import Max
from repro.core.pie import FragmentContext, PIEProgram
from repro.partition.fragment import Fragment, PartitionedGraph

Node = Hashable


@dataclass(frozen=True)
class ReachQuery:
    """Which nodes can ``source`` reach (directed) / touch (undirected)?"""

    source: Node


class ReachabilityProgram(PIEProgram):
    """PIE program for single-source reachability."""

    aggregator = Max()
    needs_bounded_staleness = False
    finite_domain = True

    def init_values(self, frag: Fragment, query: ReachQuery
                    ) -> Dict[Node, bool]:
        return {v: v == query.source for v in frag.graph.nodes}

    def peval(self, frag: Fragment, ctx: FragmentContext,
              query: ReachQuery) -> None:
        if frag.graph.has_node(query.source):
            self._traverse(frag, ctx, {query.source})

    def inceval(self, frag: Fragment, ctx: FragmentContext,
                activated: Set[Node], query: ReachQuery) -> None:
        self._traverse(frag, ctx, activated)

    def _traverse(self, frag: Fragment, ctx: FragmentContext,
                  seeds: Set[Node]) -> None:
        stack = [v for v in sorted(seeds, key=repr) if ctx.get(v)]
        while stack:
            v = stack.pop()
            if frag.cut == "edge" and v in frag.mirrors:
                continue  # the owner follows v's out-edges
            for u, _ in frag.graph.out_edges(v):
                ctx.add_work(1)
                if not ctx.get(u):
                    ctx.set(u, True)
                    stack.append(u)

    def destinations(self, pg: PartitionedGraph, frag: Fragment,
                     v: Node) -> Sequence[int]:
        if frag.cut != "edge":
            return frag.locations(v)
        if v not in frag.mirrors:
            return ()
        owner = pg.owner[v]
        return (owner,) if owner != frag.fid else ()

    def assemble(self, pg: PartitionedGraph,
                 contexts: Sequence[FragmentContext],
                 query: ReachQuery) -> Set[Node]:
        """The set of reached nodes."""
        return {v for v, fid in pg.owner.items()
                if contexts[fid].values[v]}
