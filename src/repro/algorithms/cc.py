"""Connected components as a PIE program (paper, Examples 2-4, Figs. 2-3).

PEval computes local connected components with a sequential traversal,
creates a "root" per component carrying the minimum node id (``cid``), and
links every member to its root.  IncEval merges components: when a border
node's ``cid`` decreases, the change is propagated to its root and from the
root to all members (a *bounded* incremental algorithm — cost proportional to
the size of the change, not the fragment).

``f_aggr`` is ``min``; IncEval is contracting and monotonic, so Theorem 2
applies: every asynchronous run converges to the same components.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Sequence, Set

from repro.core.aggregators import Min
from repro.core.pie import FragmentContext, PIEProgram
from repro.partition.fragment import Fragment, PartitionedGraph

Node = Hashable


@dataclass(frozen=True)
class CCQuery:
    """CC has a single query per graph: compute all connected components."""


class CCProgram(PIEProgram):
    """PIE program for connected components (undirected semantics)."""

    aggregator = Min()
    needs_bounded_staleness = False
    finite_domain = True  # cids are node ids
    dense_capable = True
    dense_dtype = "int64"  # cids are (integer) node ids on the dense path

    def init_values(self, frag: Fragment, query: CCQuery) -> Dict[Node, Node]:
        return {v: v for v in frag.graph.nodes}

    # ------------------------------------------------------------------
    def peval(self, frag: Fragment, ctx: FragmentContext,
              query: CCQuery) -> None:
        """Find local components; set every member's cid to the minimum id."""
        g = frag.graph
        root_of: Dict[Node, Node] = {}
        members: Dict[Node, List[Node]] = {}
        comp_cid: Dict[Node, Node] = {}
        seen: Set[Node] = set()
        for start in sorted(g.nodes, key=repr):
            if start in seen:
                continue
            stack = [start]
            seen.add(start)
            comp: List[Node] = []
            while stack:
                v = stack.pop()
                comp.append(v)
                ctx.add_work(1)
                for u, _ in g.out_edges(v):
                    if u not in seen:
                        seen.add(u)
                        stack.append(u)
                if g.directed:
                    for u, _ in g.in_edges(v):
                        if u not in seen:
                            seen.add(u)
                            stack.append(u)
            cid = min(comp)
            root = comp[0]
            comp_cid[root] = cid
            members[root] = comp
            for v in comp:
                root_of[v] = root
                ctx.set(v, cid)
        ctx.scratch["root_of"] = root_of
        ctx.scratch["members"] = members
        ctx.scratch["comp_cid"] = comp_cid
        # only nodes shared with other fragments need eager value updates
        # on later cid changes; interior nodes are resolved through their
        # root at Assemble time (the paper's Assemble does exactly this)
        shared = frag.shared_nodes
        ctx.scratch["border_members"] = {
            root: [v for v in comp if v in shared]
            for root, comp in members.items()}

    def inceval(self, frag: Fragment, ctx: FragmentContext,
                activated: Set[Node], query: CCQuery) -> None:
        """Merge components via min-cid propagation (Fig. 3 of the paper).

        A decreased border cid is propagated to the component's root and
        from there to the border members linked to it — a *bounded*
        incremental step.  Interior members keep stale values; Assemble
        resolves them through their root, as in the paper.
        """
        root_of = ctx.scratch["root_of"]
        border_members = ctx.scratch["border_members"]
        comp_cid = ctx.scratch["comp_cid"]
        dirty_roots: Dict[Node, Node] = {}
        for v in activated:
            new_cid = ctx.get(v)
            root = root_of[v]
            best = dirty_roots.get(root, comp_cid[root])
            if new_cid < best:
                dirty_roots[root] = new_cid
            ctx.add_work(1)
        for root, new_cid in dirty_roots.items():
            if new_cid < comp_cid[root]:
                comp_cid[root] = new_cid
                for v in border_members[root]:
                    ctx.set(v, new_cid)
                    ctx.add_work(1)

    # ------------------------------------------------------------------
    # vectorized kernels (min-label propagation over CSR slices)
    # ------------------------------------------------------------------
    def dense_seed(self, frag: Fragment, ctx: Any,
                   query: CCQuery) -> None:
        # label of v starts as v itself: the lid -> gid map, verbatim
        ctx.array[:] = ctx.view.gids

    def dense_peval(self, frag: Fragment, ctx: Any,
                    query: CCQuery) -> None:
        import numpy as np
        self._dense_propagate(frag, ctx,
                              np.arange(len(ctx.view), dtype=np.int64))

    def dense_inceval(self, frag: Fragment, ctx: Any, activated_lids,
                      query: CCQuery) -> None:
        self._dense_propagate(frag, ctx, activated_lids)

    def _dense_propagate(self, frag: Fragment, ctx: Any, seeds) -> None:
        """Propagate min labels to the local fixpoint (both directions).

        Unlike the generic path, labels of *every* local node stay fresh,
        so the default owner-values ``dense_assemble`` replaces the
        root/cid scratch resolution; the global fixpoint (min member id
        per component) is identical.
        """
        import numpy as np
        from repro.graph.csr import expand_ranges
        csr = ctx.view.csr
        labels = ctx.array
        # undirected CSR already stores each edge both ways; directed
        # graphs need the reverse adjacency for CC's undirected semantics
        dirs = [(csr.out_indptr, csr.out_indices, csr.out_sources)]
        if csr.directed:
            dirs.append((csr.in_indptr, csr.in_indices, csr.in_sources))
        # boolean scatter + nonzero dedups seeds and each wave's updates
        # far cheaper than hash-based np.unique on the raw arrays
        upd = np.zeros(labels.size, dtype=bool)
        upd[np.asarray(seeds, dtype=np.int64)] = True
        frontier = np.nonzero(upd)[0]
        while frontier.size:
            # label propagation keeps nearly every node improving for
            # several waves; once the frontier covers half the fragment
            # a flat sweep of the whole edge array is cheaper than the
            # ragged-range expansion (extra edges are no-ops under min)
            sweep = frontier.size * 2 >= labels.size
            upd[:] = False
            for indptr, indices, sources in dirs:
                if sweep:
                    ctx.add_work(int(indices.size))
                    tgt = indices
                    lab = labels[sources]
                else:
                    starts = indptr[frontier]
                    counts = indptr[frontier + 1] - starts
                    eidx = expand_ranges(starts, counts)
                    ctx.add_work(int(eidx.size))
                    if eidx.size == 0:
                        continue
                    tgt = indices[eidx]
                    lab = labels[sources[eidx]]
                # unfiltered scatter-min plus a node-sized before/after
                # compare beats filtering the edge-sized candidate list
                # (which costs a gather, a compare and two compressions
                # over |E| entries to save work that minimum.at skips
                # anyway)
                prev = labels.copy()
                np.minimum.at(labels, tgt, lab)
                upd |= labels < prev
            ctx.mask |= upd
            frontier = np.nonzero(upd)[0]

    # ------------------------------------------------------------------
    def inc_update(self, frag: Fragment, ctx: FragmentContext,
                   inserted, query: CCQuery) -> Set[Node]:
        """Union the endpoint components of every inserted local edge.

        New nodes (including fresh mirror copies) get singleton components
        first; the union adopts the smaller cid and rewrites every member's
        status variable, so the engine ships the changes and the
        continuation run propagates them across fragments.
        """
        root_of = ctx.scratch["root_of"]
        members = ctx.scratch["members"]
        comp_cid = ctx.scratch["comp_cid"]
        border_members = ctx.scratch["border_members"]
        shared = frag.shared_nodes

        def ensure(v: Node) -> Node:
            if v not in root_of:
                root_of[v] = v
                members[v] = [v]
                comp_cid[v] = ctx.get(v)
                border_members[v] = [v] if v in shared else []
            return root_of[v]

        for u, v, _ in inserted:
            ru, rv = ensure(u), ensure(v)
            # an endpoint may have just *become* shared (its edge is the
            # new cut edge): start tracking it for eager updates
            for x, r in ((u, ru), (v, rv)):
                if x in shared and x not in border_members[r]:
                    border_members[r].append(x)
            if ru == rv:
                continue
            # absorb the smaller component into the larger one
            if len(members[ru]) < len(members[rv]):
                ru, rv = rv, ru
            new_cid = min(comp_cid[ru], comp_cid[rv])
            for x in members[rv]:
                root_of[x] = ru
                ctx.add_work(1)
            members[ru].extend(members[rv])
            border_members[ru].extend(border_members[rv])
            del members[rv]
            del border_members[rv]
            del comp_cid[rv]
            comp_cid[ru] = new_cid
            for x in border_members[ru]:
                ctx.set(x, new_cid)
                ctx.add_work(1)
        return set()

    # ------------------------------------------------------------------
    def destinations(self, pg: PartitionedGraph, frag: Fragment,
                     v: Node) -> Sequence[int]:
        """Ship mirror cids to the owner under edge-cut (``C_i = F_i.O``);
        every copy exchanges updates under vertex-cut.

        The owner's local component holds mirror copies of each adjacent
        fragment's border nodes, so min-cid information still flows both
        ways across every cut edge.
        """
        if frag.cut != "edge":
            return frag.locations(v)
        if v not in frag.mirrors:
            return ()
        owner = pg.owner[v]
        return (owner,) if owner != frag.fid else ()

    def assemble(self, pg: PartitionedGraph,
                 contexts: Sequence[FragmentContext],
                 query: CCQuery) -> Dict[Node, Node]:
        """Map every node to its component id (the min member id).

        As in the paper, Assemble "first updates the cid of each node to
        the cid of its linked root": interior values may be stale, the
        root's cid is authoritative.
        """
        out: Dict[Node, Node] = {}
        for v, fid in pg.owner.items():
            ctx = contexts[fid]
            root = ctx.scratch["root_of"][v]
            out[v] = ctx.scratch["comp_cid"][root]
        return out


def components_from_answer(answer: Dict[Node, Node]) -> List[Set[Node]]:
    """Group the node -> cid map into component sets (sorted by cid)."""
    buckets: Dict[Node, Set[Node]] = {}
    for v, cid in answer.items():
        buckets.setdefault(cid, set()).add(v)
    return [buckets[cid] for cid in sorted(buckets)]
