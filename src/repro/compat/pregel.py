"""Vertex-centric (Pregel) programs on top of AAP — Proposition 3.

The paper sketches the simulation: *"(a) PEval runs compute() over vertices
with a loop, and uses status variables to exchange local messages instead of
SendMessageTo(). (b) The update parameters are status variables of border
nodes, and f_aggr groups messages just like Pregel. (c) IncEval also runs
compute() over vertices in a fragment, except that it starts from active
vertices."*

:class:`PregelAdapter` implements exactly that: each PIE round runs local
supersteps to a local fixpoint (messages to local vertices are consumed
in-loop; messages to remote vertices are combined into the border copy's
status variable and shipped).  A message *combiner* (as in Pregel) is
required; with a monotone combiner such as ``min`` the adapter inherits
AAP's convergence guarantees, and under the BSP policy the execution is
superstep-equivalent to Pregel.
"""

from __future__ import annotations

import abc
from typing import (Any, Callable, Dict, Hashable, List, Optional, Sequence,
                    Set, Tuple)

from repro.core.aggregators import Aggregator
from repro.core.pie import FragmentContext, PIEProgram
from repro.errors import ProgramError
from repro.partition.fragment import Fragment, PartitionedGraph

Node = Hashable


class VertexContext:
    """What ``compute()`` sees: one vertex plus its outbox."""

    __slots__ = ("vid", "_values", "_outbox", "_graph", "halted")

    def __init__(self, vid: Node, values: Dict[Node, Any], graph,
                 outbox: List[Tuple[Node, Any]]):
        self.vid = vid
        self._values = values
        self._graph = graph
        self._outbox = outbox
        self.halted = False

    @property
    def value(self) -> Any:
        return self._values[self.vid]

    @value.setter
    def value(self, val: Any) -> None:
        self._values[self.vid] = val

    def out_edges(self) -> List[Tuple[Node, float]]:
        return self._graph.out_edges(self.vid)

    def send(self, target: Node, message: Any) -> None:
        """SendMessageTo: deliver ``message`` to ``target`` next superstep."""
        self._outbox.append((target, message))

    def send_to_neighbors(self, message: Any) -> None:
        for u, _ in self._graph.out_edges(self.vid):
            self._outbox.append((u, message))

    def vote_to_halt(self) -> None:
        self.halted = True


class PregelVertexProgram(abc.ABC):
    """A vertex-centric program: ``compute()`` plus a message combiner."""

    @abc.abstractmethod
    def initial_value(self, vid: Node, graph) -> Any:
        """Vertex value before superstep 0."""

    @abc.abstractmethod
    def compute(self, ctx: VertexContext, messages: Sequence[Any],
                superstep: int) -> None:
        """One vertex activation (Pregel's ``compute``)."""

    @abc.abstractmethod
    def combine(self, a: Any, b: Any) -> Any:
        """Pregel message combiner; must be associative and commutative."""

    def run_on_all_at_start(self) -> bool:
        """Whether superstep 0 activates every vertex (Pregel default)."""
        return True


class _CombinerAggregator(Aggregator):
    """Wraps a Pregel combiner as the PIE aggregate function.

    ``None`` is the identity (no pending message).
    """

    name = "pregel-combiner"
    accumulative = True

    def __init__(self, combine: Callable[[Any, Any], Any]):
        self._combine = combine

    def combine(self, current: Any, incoming: Sequence[Any]) -> Any:
        acc = current
        for val in incoming:
            if val is None:
                continue
            acc = val if acc is None else self._combine(acc, val)
        return acc

    def identity(self) -> Any:
        return None


class PregelAdapter(PIEProgram):
    """Run a :class:`PregelVertexProgram` as a PIE program under any model.

    The PIE status variable of node ``v`` holds the *combined pending
    message* addressed to ``v`` (``None`` when empty).  Vertex values live in
    program scratch and are collected by Assemble.
    """

    needs_bounded_staleness = False
    finite_domain = False  # depends on the wrapped program

    def __init__(self, vprog: PregelVertexProgram,
                 max_local_supersteps: int = 100_000):
        self.vprog = vprog
        self.aggregator = _CombinerAggregator(vprog.combine)
        self.max_local_supersteps = max_local_supersteps

    def init_values(self, frag: Fragment, query: Any) -> Dict[Node, Any]:
        return {v: None for v in frag.graph.nodes}

    # ------------------------------------------------------------------
    def peval(self, frag: Fragment, ctx: FragmentContext, query: Any) -> None:
        values = {v: self.vprog.initial_value(v, frag.graph)
                  for v in frag.graph.nodes}
        ctx.scratch["vertex_values"] = values
        ctx.scratch["superstep"] = 0
        if self.vprog.run_on_all_at_start():
            initial = {v: [] for v in sorted(frag.owned, key=repr)}
            self._local_supersteps(frag, ctx, initial)

    def inceval(self, frag: Fragment, ctx: FragmentContext,
                activated: Set[Node], query: Any) -> None:
        inbox: Dict[Node, List[Any]] = {}
        for v in sorted(activated, key=repr):
            if v not in frag.owned:
                continue
            pending = ctx.get(v)
            if pending is None:
                continue
            inbox[v] = [pending]
            ctx.set_silent(v, None)  # consumed; not a remote-bound change
        if inbox:
            self._local_supersteps(frag, ctx, inbox)

    def _local_supersteps(self, frag: Fragment, ctx: FragmentContext,
                          inbox: Dict[Node, List[Any]]) -> None:
        """Run compute() waves until no local messages remain.

        Messages to remote (mirror) vertices are combined into their status
        variable, which the engine ships after the round.
        """
        values = ctx.scratch["vertex_values"]
        steps = 0
        while inbox:
            steps += 1
            if steps > self.max_local_supersteps:
                raise ProgramError("local superstep budget exhausted; the "
                                   "vertex program may not terminate")
            next_inbox: Dict[Node, List[Any]] = {}
            for v in sorted(inbox, key=repr):
                outbox: List[Tuple[Node, Any]] = []
                vctx = VertexContext(v, values, frag.graph, outbox)
                self.vprog.compute(vctx, inbox[v], ctx.scratch["superstep"])
                ctx.add_work(1 + len(outbox))
                for target, message in outbox:
                    if target in frag.owned:
                        next_inbox.setdefault(target, []).append(message)
                    elif target in ctx.values:
                        ctx.update(target, message)
                    else:
                        raise ProgramError(
                            f"vertex {v!r} sent to non-adjacent remote "
                            f"vertex {target!r}")
            ctx.scratch["superstep"] += 1
            inbox = next_inbox

    # ------------------------------------------------------------------
    def emit(self, frag: Fragment, ctx: FragmentContext, v: Node) -> Any:
        pending = ctx.get(v)
        ctx.set_silent(v, None)
        return pending

    def ship_set(self, frag: Fragment):
        return frozenset(v for v in frag.mirrors if frag.locations(v))

    def destinations(self, pg: PartitionedGraph, frag: Fragment,
                     v: Node) -> Sequence[int]:
        owner = pg.owner[v]
        return (owner,) if owner != frag.fid else ()

    def apply_incoming(self, frag: Fragment, ctx: FragmentContext, v: Node,
                       payloads: Sequence[Any]) -> bool:
        live = [p for p in payloads if p is not None]
        if not live:
            return False
        return ctx.update(v, *live)

    # ------------------------------------------------------------------
    def assemble(self, pg: PartitionedGraph,
                 contexts: Sequence[FragmentContext],
                 query: Any) -> Dict[Node, Any]:
        return {v: contexts[fid].scratch["vertex_values"][v]
                for v, fid in pg.owner.items()}
