"""Simulations of other parallel models on AAP (Prop. 3 / Theorem 4)."""

from repro.compat.mapreduce import (LocalMapReduce, MapReduceJob,
                                    MapReduceOnPIE, Subroutine,
                                    make_worker_graph, run_mapreduce)
from repro.compat.pregel import (PregelAdapter, PregelVertexProgram,
                                 VertexContext)

__all__ = ["PregelAdapter", "PregelVertexProgram", "VertexContext",
           "MapReduceJob", "Subroutine", "MapReduceOnPIE", "LocalMapReduce",
           "make_worker_graph", "run_mapreduce"]
