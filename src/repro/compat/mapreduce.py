"""MapReduce on AAP/GRAPE with designated messages only — Theorem 4.

The paper's proof constructs a PIE program over a clique worker graph
``G_W`` of ``n`` nodes (one per worker): PEval runs the first mapper,
IncEval selects subroutine branches by the round tag carried in each
``(r, key, value)`` tuple, and tuples move between workers through the
status variables of ``G_W``'s border nodes — designated messages only,
no key-value side channel.  :class:`MapReduceOnPIE` implements exactly
this construction; :class:`LocalMapReduce` is the reference executor.

MapReduce is a synchronous model: run the simulation under the BSP policy
(:func:`run_mapreduce` does).  The adapter checks stage alignment and
raises if messages from different stages ever mix in one round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (Any, Callable, Dict, Hashable, Iterable, List, Mapping,
                    Optional, Sequence, Set, Tuple)

from repro.core.aggregators import Aggregator
from repro.core.pie import FragmentContext, PIEProgram
from repro.errors import ProgramError
from repro.graph.generators import complete_graph
from repro.partition.builder import build_edge_cut
from repro.partition.fragment import Fragment, PartitionedGraph

KV = Tuple[Any, Any]
Mapper = Callable[[Any, Any], Iterable[KV]]
Reducer = Callable[[Any, List[Any]], Iterable[KV]]


@dataclass(frozen=True)
class Subroutine:
    """One B_r = (mapper mu_r, reducer rho_r)."""

    mapper: Mapper
    reducer: Reducer


@dataclass(frozen=True)
class MapReduceJob:
    """A MapReduce algorithm: a sequence of subroutines (B_1, ..., B_k)."""

    subroutines: Tuple[Subroutine, ...]

    def __post_init__(self):
        if not self.subroutines:
            raise ProgramError("a MapReduce job needs at least one subroutine")

    @property
    def num_stages(self) -> int:
        return len(self.subroutines)


def identity_mapper(key: Any, value: Any) -> Iterable[KV]:
    yield key, value


def identity_reducer(key: Any, values: List[Any]) -> Iterable[KV]:
    for v in values:
        yield key, v


class LocalMapReduce:
    """Sequential reference executor for :class:`MapReduceJob`."""

    def __init__(self, job: MapReduceJob):
        self.job = job

    def run(self, pairs: Iterable[KV]) -> List[KV]:
        current = list(pairs)
        for sub in self.job.subroutines:
            mapped: List[KV] = []
            for k, v in current:
                mapped.extend(sub.mapper(k, v))
            groups: Dict[Any, List[Any]] = {}
            for k, v in mapped:
                groups.setdefault(k, []).append(v)
            current = []
            for k in sorted(groups, key=repr):
                current.extend(sub.reducer(k, groups[k]))
        return current


class _TupleBagAggregator(Aggregator):
    """Status variables hold bags (tuples) of (r, key, value) triples."""

    name = "tuple-bag"
    accumulative = True

    def combine(self, current: Tuple, incoming: Sequence[Tuple]) -> Tuple:
        merged = list(current)
        for bag in incoming:
            merged.extend(bag)
        return tuple(merged)

    def identity(self) -> Tuple:
        return ()


class MapReduceOnPIE(PIEProgram):
    """The Theorem-4 construction: simulate A on GRAPE/AAP.

    The input graph must be the clique ``G_W`` over worker ids ``0..n-1``
    partitioned so that node ``i`` is owned by fragment ``i``
    (:func:`make_worker_graph` builds it).  The query is the initial
    distribution: worker id -> list of (key, value) pairs.
    """

    aggregator = _TupleBagAggregator()
    needs_bounded_staleness = False
    finite_domain = False

    def __init__(self, job: MapReduceJob):
        self.job = job

    def init_values(self, frag: Fragment, query: Mapping[int, List[KV]]
                    ) -> Dict[Hashable, Tuple]:
        return {v: () for v in frag.graph.nodes}

    # ------------------------------------------------------------------
    #: sentinel value marking a stage beacon (keeps workers stage-aligned)
    BEACON = "__stage_beacon__"

    def _partition_key(self, key: Any, n: int) -> int:
        return hash(repr(key)) % n

    def _route(self, frag: Fragment, ctx: FragmentContext, n: int,
               stage: int, pairs: Iterable[KV]) -> None:
        """Tag pairs with the stage and store them on target worker nodes.

        A beacon triple is appended to *every* peer's bag so that each
        worker is triggered next round even when it receives no data tuples
        — this is what keeps the BSP supersteps (and hence the map/reduce
        barriers) aligned without a side channel.
        """
        me = frag.fid
        for k, v in pairs:
            target = self._partition_key(k, n)
            triple = (stage, k, v)
            if target == me:
                ctx.scratch["local"].append(triple)
            else:
                ctx.set(target, ctx.get(target) + (triple,))
            ctx.add_work(1)
        for peer in range(n):
            if peer != me:
                ctx.set(peer, ctx.get(peer) + ((stage, self.BEACON, None),))

    def peval(self, frag: Fragment, ctx: FragmentContext,
              query: Mapping[int, List[KV]]) -> None:
        n = len(ctx.values)
        ctx.scratch["local"] = []
        ctx.scratch["results"] = []
        ctx.scratch["n"] = n
        my_input = query.get(frag.fid, [])
        mapped: List[KV] = []
        for k, v in my_input:
            mapped.extend(self.job.subroutines[0].mapper(k, v))
            ctx.add_work(1)
        self._route(frag, ctx, n, stage=1, pairs=mapped)
        if n == 1:
            # degenerate single-worker deployment: no peers will ever
            # trigger IncEval, so drive all stages to completion locally
            # (every reducer already sees all values for its keys)
            while ctx.scratch["local"]:
                bag = tuple(ctx.scratch["local"])
                ctx.scratch["local"] = []
                self._process_bag(frag, ctx, bag, n)

    def inceval(self, frag: Fragment, ctx: FragmentContext,
                activated: Set[Hashable], query: Mapping[int, List[KV]]
                ) -> None:
        me = frag.fid
        n = ctx.scratch["n"]
        bag = ctx.get(me) + tuple(ctx.scratch["local"])
        ctx.set_silent(me, ())
        ctx.scratch["local"] = []
        if bag:
            self._process_bag(frag, ctx, bag, n)

    def _process_bag(self, frag: Fragment, ctx: FragmentContext,
                     bag: Tuple, n: int) -> None:
        """Run the reducer (and next mapper) for one stage's tuples."""
        me = frag.fid
        stages = {r for r, _, _ in bag}
        if len(stages) > 1:
            raise ProgramError(
                f"worker {me} received tuples from stages {sorted(stages)}; "
                f"run the MapReduce simulation under the BSP policy")
        stage = stages.pop()
        sub = self.job.subroutines[stage - 1]
        groups: Dict[Any, List[Any]] = {}
        for _, k, v in bag:
            if k is not self.BEACON and k != self.BEACON:
                groups.setdefault(k, []).append(v)
        reduced: List[KV] = []
        for k in sorted(groups, key=repr):
            reduced.extend(sub.reducer(k, groups[k]))
            ctx.add_work(len(groups[k]))
        if stage == self.job.num_stages:
            ctx.scratch["results"].extend(reduced)
            return
        nxt = self.job.subroutines[stage].mapper
        mapped: List[KV] = []
        for k, v in reduced:
            mapped.extend(nxt(k, v))
            ctx.add_work(1)
        self._route(frag, ctx, n, stage=stage + 1, pairs=mapped)

    # ------------------------------------------------------------------
    def emit(self, frag: Fragment, ctx: FragmentContext, v: Hashable) -> Tuple:
        bag = ctx.get(v)
        ctx.set_silent(v, ())
        return bag

    def ship_set(self, frag: Fragment):
        return frozenset(v for v in frag.mirrors if frag.locations(v))

    def destinations(self, pg: PartitionedGraph, frag: Fragment,
                     v: Hashable) -> Sequence[int]:
        """A bag must reach its worker node's owner exactly once."""
        owner = pg.owner[v]
        return (owner,) if owner != frag.fid else ()

    def apply_incoming(self, frag: Fragment, ctx: FragmentContext,
                       v: Hashable, payloads: Sequence[Tuple]) -> bool:
        merged = tuple(t for bag in payloads for t in bag)
        if not merged:
            return False
        ctx.set(v, ctx.get(v) + merged)
        return True

    def assemble(self, pg: PartitionedGraph,
                 contexts: Sequence[FragmentContext],
                 query: Mapping[int, List[KV]]) -> List[KV]:
        out: List[KV] = []
        for ctx in contexts:
            out.extend(ctx.scratch["results"])
            # tuples may still sit in an own-node bag if the last stage
            # produced local-only routing; flush them (they are final-stage)
        return sorted(out, key=repr)


def make_worker_graph(n: int) -> PartitionedGraph:
    """The clique ``G_W`` with worker node ``i`` owned by fragment ``i``."""
    g = complete_graph(n, directed=False)
    return build_edge_cut(g, {v: v for v in g.nodes}, n, "worker-clique")


def run_mapreduce(job: MapReduceJob, pairs: Iterable[KV],
                  n: int = 4) -> List[KV]:
    """Distribute ``pairs`` over ``n`` workers and run the Theorem-4
    simulation under strict BSP supersteps; returns the sorted output pairs.

    Strictness matters: MapReduce's reducers are a barrier, so the
    simulation uses :meth:`ScheduledExecutor.run_supersteps` (each superstep
    consumes exactly the previous superstep's messages).
    """
    from repro.core.engine import Engine
    from repro.core.fixpoint import ScheduledExecutor

    pairs = list(pairs)
    dist: Dict[int, List[KV]] = {i: [] for i in range(n)}
    for idx, kv in enumerate(pairs):
        dist[idx % n].append(kv)
    pg = make_worker_graph(n)
    engine = Engine(MapReduceOnPIE(job), pg, dist)
    ex = ScheduledExecutor(engine)
    ex.start()
    ex.run_supersteps()
    return ex.assemble()
