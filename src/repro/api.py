"""High-level convenience API.

:func:`run` parallelises a PIE program over a graph under a named parallel
model and returns a :class:`~repro.core.result.RunResult`::

    from repro import api
    from repro.algorithms.sssp import SSSPProgram, SSSPQuery
    from repro.graph import generators

    g = generators.grid2d(40, 40, seed=1)
    result = api.run(SSSPProgram(), g, SSSPQuery(source=0),
                     num_fragments=8, mode="AAP")
    print(result.time, result.answer[1599])

:func:`compare_modes` runs the same workload under every model with identical
cost parameters — the paper's GRAPE+ vs GRAPE+BSP/AP/SSP methodology.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Sequence, Union

from repro.core.delay import DelayPolicy
from repro.core.engine import Engine
from repro.core.modes import MODES, make_policy
from repro.core.pie import PIEProgram
from repro.core.result import RunResult
from repro.errors import RuntimeConfigError
from repro.graph.graph import Graph
from repro.partition.base import EdgePartitioner, NodePartitioner
from repro.partition.edge_cut import HashPartitioner
from repro.partition.fragment import PartitionedGraph
from repro.runtime.costmodel import CostModel
from repro.runtime.simulator import SimulatedRuntime

Partitioner = Union[NodePartitioner, EdgePartitioner]


def partition_graph(graph: Graph, num_fragments: int,
                    partitioner: Optional[Partitioner] = None
                    ) -> PartitionedGraph:
    """Partition ``graph`` with ``partitioner`` (default: hash edge-cut)."""
    strategy = partitioner if partitioner is not None else HashPartitioner()
    return strategy.partition(graph, num_fragments)


def run(program: PIEProgram, graph_or_partition: Union[Graph,
                                                       PartitionedGraph],
        query: Any, *, mode: str = "AAP", num_fragments: int = 4,
        partitioner: Optional[Partitioner] = None,
        policy: Optional[DelayPolicy] = None,
        cost_model: Optional[CostModel] = None,
        hosts: Optional[Sequence[int]] = None,
        staleness_bound: Optional[int] = None,
        record_trace: bool = True,
        observer: Optional[Any] = None,
        vectorized: bool = False,
        perturber: Optional[Any] = None,
        **policy_kwargs: Any) -> RunResult:
    """Parallelise ``program`` on ``graph`` under one parallel model.

    Accepts either a raw :class:`Graph` (partitioned on the fly) or an
    existing :class:`PartitionedGraph`.  ``policy`` overrides ``mode``.
    When the program declares :attr:`PIEProgram.needs_bounded_staleness`
    and no bound is given, its default bound is applied (the paper: CF).
    ``observer`` (a :class:`repro.obs.Observer`) enables structured event
    and metrics recording; the default ``None`` records nothing.
    ``vectorized`` opts into the dense fast path (see
    ``docs/performance.md``); it silently falls back to the generic path
    when the program or partition does not support it.
    ``perturber`` (a :class:`repro.fuzz.SchedulePerturber`) biases the
    simulated schedule for conformance fuzzing (see
    ``docs/conformance.md``); ``None`` leaves the schedule untouched.
    """
    if isinstance(graph_or_partition, PartitionedGraph):
        pg = graph_or_partition
    elif isinstance(graph_or_partition, Graph):
        pg = partition_graph(graph_or_partition, num_fragments, partitioner)
    else:
        raise RuntimeConfigError(
            f"expected Graph or PartitionedGraph, got "
            f"{type(graph_or_partition).__name__}")
    if staleness_bound is None and program.needs_bounded_staleness:
        staleness_bound = program.default_staleness_bound
    if policy is None:
        policy = make_policy(mode, staleness_bound=staleness_bound,
                             **policy_kwargs)
    engine = Engine(program, pg, query, vectorized=vectorized)
    runtime = SimulatedRuntime(engine, policy, cost_model=cost_model,
                               hosts=hosts, record_trace=record_trace,
                               observer=observer, perturber=perturber)
    return runtime.run()


def compare_modes(program_factory, graph_or_partition, query: Any, *,
                  modes: Iterable[str] = MODES,
                  num_fragments: int = 4,
                  partitioner: Optional[Partitioner] = None,
                  cost_model_factory=None,
                  staleness_bound: Optional[int] = None,
                  record_trace: bool = False,
                  **policy_kwargs: Any) -> Dict[str, RunResult]:
    """Run the identical workload under several models.

    ``program_factory`` builds a fresh program per run (programs may be
    stateless, but fresh instances keep runs independent);
    ``cost_model_factory`` likewise builds a fresh seeded cost model so each
    mode sees identical timing parameters.
    """
    if isinstance(graph_or_partition, Graph):
        pg = partition_graph(graph_or_partition, num_fragments, partitioner)
    else:
        pg = graph_or_partition
    results: Dict[str, RunResult] = {}
    for mode in modes:
        cm = cost_model_factory() if cost_model_factory is not None else None
        results[mode] = run(
            program_factory(), pg, query, mode=mode,
            cost_model=cm, staleness_bound=staleness_bound,
            record_trace=record_trace,
            **(policy_kwargs if mode.upper() == "AAP" else {}))
    return results
