"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so that callers
can catch one base class.  Subclasses are organised by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all exceptions raised by this library."""


class GraphError(ReproError):
    """Invalid graph construction or access (unknown node, bad edge, ...)."""


class PartitionError(ReproError):
    """Invalid partitioning request or inconsistent fragment construction."""


class ProgramError(ReproError):
    """A PIE program violated the programming-model contract."""


class RuntimeConfigError(ReproError):
    """Invalid runtime configuration (cost model, policies, worker counts)."""


class TerminationError(ReproError):
    """The runtime failed to reach the termination protocol's fixpoint."""


class ConvergenceError(ReproError):
    """A convergence-condition check (T1/T2/T3) failed or was inconclusive."""


class SnapshotError(ReproError):
    """Chandy-Lamport snapshot or recovery failed."""


class TransportError(ReproError):
    """The zero-copy data plane detected a torn or inconsistent state.

    Raised when a shared-memory slab descriptor fails validation (stale
    position, bad record magic, unknown payload dtype, generation
    mismatch, or a length overrunning the published head) — a typed
    error instead of a silent wrong-answer view.
    """


class WorkerCrashedError(ReproError):
    """A live runtime detected a dead worker (heartbeat loss or process
    death).

    This is the *detection-level* failure: it carries enough context for a
    supervisor (:func:`repro.runtime.recovery.run_with_recovery`) to roll
    back to the last consistent checkpoint and retry.  ``checkpoint`` is the
    last complete :class:`~repro.runtime.snapshot.GlobalSnapshot` (or
    ``None`` when the run died before the first checkpoint).
    """

    def __init__(self, wid: int, reason: str, detected_at: float = 0.0,
                 checkpoint=None, failures=None,
                 detection_latency: float = 0.0):
        super().__init__(f"worker {wid} failed: {reason} "
                         f"(detected at t={detected_at:.3f}s)")
        self.wid = wid
        self.reason = reason
        self.detected_at = detected_at
        self.checkpoint = checkpoint
        self.failures = list(failures) if failures else []
        self.detection_latency = detection_latency


class WorkerFailureError(ReproError):
    """Recovery gave up: the retry budget is exhausted.

    Raised instead of hanging; carries the structured failure log
    (``failures``, a list of :class:`~repro.runtime.recovery.FailureEvent`)
    and the last consistent ``checkpoint`` so callers can inspect or resume
    manually.
    """

    def __init__(self, wid: int, failures, checkpoint=None, attempts: int = 0):
        summary = "; ".join(f"{f.kind}(wid={f.wid})" for f in failures[-5:])
        super().__init__(
            f"worker {wid} failed permanently after {attempts} attempt(s); "
            f"recent failures: {summary or 'none recorded'}")
        self.wid = wid
        self.failures = list(failures)
        self.checkpoint = checkpoint
        self.attempts = attempts
