"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so that callers
can catch one base class.  Subclasses are organised by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all exceptions raised by this library."""


class GraphError(ReproError):
    """Invalid graph construction or access (unknown node, bad edge, ...)."""


class PartitionError(ReproError):
    """Invalid partitioning request or inconsistent fragment construction."""


class ProgramError(ReproError):
    """A PIE program violated the programming-model contract."""


class RuntimeConfigError(ReproError):
    """Invalid runtime configuration (cost model, policies, worker counts)."""


class TerminationError(ReproError):
    """The runtime failed to reach the termination protocol's fixpoint."""


class ConvergenceError(ReproError):
    """A convergence-condition check (T1/T2/T3) failed or was inconclusive."""


class SnapshotError(ReproError):
    """Chandy-Lamport snapshot or recovery failed."""
