"""Fig. 6(a)/(b): SSSP response time vs worker count (traffic, Friendster).

Paper's shapes: GRAPE+ (AAP) fastest at every n; time decreases with n
(on average 2.37x faster from 64 to 192 workers); AAP's advantage over BSP
largest on traffic (high diameter).  Workers are scaled 64..192 -> 4..12.
"""

import pytest
from conftest import run_once

from repro.bench import workloads
from repro.bench.experiments import FIG6_MODES, run_modes_experiment
from repro.bench.reporting import format_series

WORKERS = (4, 6, 8, 10, 12)


@pytest.mark.parametrize("dataset", ["traffic", "friendster"])
def test_fig6_sssp(benchmark, emit, dataset):
    graph = (workloads.traffic() if dataset == "traffic"
             else workloads.friendster())
    series = run_once(benchmark, run_modes_experiment, "sssp", graph,
                      WORKERS)
    emit(format_series(
        f"Fig 6({'a' if dataset == 'traffic' else 'b'}) - "
        f"SSSP on {dataset}, varying workers (straggler 4x)",
        "workers", WORKERS, series))

    aap, bsp = series["AAP"], series["BSP"]
    # AAP never loses to BSP by more than noise, and wins somewhere
    assert all(a <= b * 1.10 for a, b in zip(aap, bsp))
    assert any(a < b for a, b in zip(aap, bsp))
    # parallel speed-up: more workers help AAP on balanced-per-worker data
    assert aap[-1] < aap[0]
    # AAP is the best or within 15% of the best mode at max workers
    best_last = min(series[m][-1] for m in FIG6_MODES)
    assert aap[-1] <= best_last * 1.15
