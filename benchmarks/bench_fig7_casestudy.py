"""Appendix B: the PageRank and CF case studies.

(1) PageRank with one straggler among the workers: timing diagrams under
BSP/AP/SSP/AAP.  Paper's findings: BSP dominated by the straggler with
idle fast workers (174s); AP reduces idling but fast workers churn (166s);
SSP degrades to BSP once the c budget is spent (145s); AAP adapts delay
stretches, the straggler converges in fewer rounds, fastest run (112s).

(2) CF: BSP converges in the fewest rounds but idles; AP takes the most
rounds; SSP needs a hand-tuned c; AAP is robust to the choice of c.
"""

from conftest import run_once

from repro.bench.experiments import run_cf_casestudy, run_fig7_casestudy
from repro.bench.reporting import format_table
from repro.runtime.trace import ascii_gantt


def test_fig7_pagerank_straggler(benchmark, emit):
    runs = run_once(benchmark, run_fig7_casestudy, 8)
    rows = [[mode, d["time"], d["straggler_rounds"], d["idle"]]
            for mode, d in runs.items()]
    report = [format_table(
        "Fig 7 - PageRank with straggler P0 (4x slower), 8 workers",
        ["mode", "time", "straggler rounds", "total idle"], rows)]
    for mode, d in runs.items():
        report.append("")
        report.append(ascii_gantt(d["result"].trace, width=70,
                                  label=f"[{mode}]"))
    emit("\n".join(report))

    # AAP fastest of the four models
    assert runs["AAP"]["time"] <= min(d["time"] for m, d in runs.items()
                                      if m != "AAP") * 1.02
    # the straggler needs far fewer rounds than under the barrier models
    # and no more than AP's (up to scheduling noise)
    assert runs["AAP"]["straggler_rounds"] < runs["BSP"]["straggler_rounds"]
    assert runs["AAP"]["straggler_rounds"] <= \
        runs["AP"]["straggler_rounds"] + 2
    # BSP idles the most
    assert runs["BSP"]["idle"] >= runs["AAP"]["idle"]


def test_appendixB_cf_staleness(benchmark, emit):
    rows = run_once(benchmark, run_cf_casestudy, 6)
    emit(format_table(
        "Appendix B - CF under the four models, varying staleness bound c",
        ["mode", "c", "time", "rounds", "rmse"],
        [[r["mode"], r["c"], r["time"], r["rounds"], r["rmse"]]
         for r in rows]))

    by_mode = {}
    for r in rows:
        by_mode.setdefault(r["mode"], []).append(r)
    # BSP converges in the fewest rounds; AP takes the most
    assert max(r["rounds"] for r in by_mode["BSP"]) <= \
        min(r["rounds"] for r in by_mode["AP"])
    # AAP is robust to c: its times vary less than SSP's across c
    aap_times = [r["time"] for r in by_mode["AAP"]]
    ssp_times = [r["time"] for r in by_mode["SSP"]]
    aap_spread = max(aap_times) / min(aap_times)
    ssp_spread = max(ssp_times) / min(ssp_times)
    assert aap_spread <= ssp_spread * 1.25
    # every configuration actually learns something
    assert all(r["rmse"] < 0.6 for r in rows)
