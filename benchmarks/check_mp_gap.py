"""Assert the multiprocess vectorized speedup has not regressed.

Compares a freshly produced ``BENCH_kernels.json`` (the *after* report)
against committed floor values: the multiprocess generic-vs-vectorized
speedup for SSSP and CC must stay at or above the floors, and every
cross-check must have passed.  CI runs this after the bench-smoke step so
a transport or runtime change that silently slows the fast path fails
the build instead of shipping::

    python benchmarks/check_mp_gap.py --report BENCH_kernels.json \
        --min-sssp 5.6 --min-cc 3.3

The default floors are the seed repository's measured speedups; raise
them when a change intentionally widens the gap.  ``--baseline`` points
at a *before* report (e.g. the committed BENCH_kernels.json) purely for
the printed comparison — the assertion is always against the floors, so
machine-speed drift between the two runs cannot flip the verdict.
"""

import argparse
import json
import sys


def _mp_speedups(report):
    out = {}
    for row in report.get("results", []):
        if row.get("runtime") == "multiprocess":
            out[row["algorithm"]] = row
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--report", default="BENCH_kernels.json",
                        help="freshly generated kernel bench report")
    parser.add_argument("--baseline", default=None,
                        help="optional before-report for the printed "
                             "comparison (no effect on the verdict)")
    parser.add_argument("--min-sssp", type=float, default=5.6,
                        help="minimum multiprocess SSSP speedup")
    parser.add_argument("--min-cc", type=float, default=3.3,
                        help="minimum multiprocess CC speedup")
    args = parser.parse_args(argv)

    with open(args.report, encoding="utf-8") as fh:
        report = json.load(fh)
    rows = _mp_speedups(report)
    baseline_rows = {}
    if args.baseline:
        with open(args.baseline, encoding="utf-8") as fh:
            baseline_rows = _mp_speedups(json.load(fh))

    floors = {"sssp": args.min_sssp, "cc": args.min_cc}
    failures = []
    for algorithm, floor in floors.items():
        row = rows.get(algorithm)
        if row is None:
            failures.append(f"{algorithm}: no multiprocess row in "
                            f"{args.report}")
            continue
        speedup = row["speedup"]
        before = baseline_rows.get(algorithm, {}).get("speedup")
        drift = (f" (baseline {before}x)" if before is not None else "")
        status = "ok" if speedup >= floor and row["match"] else "FAIL"
        print(f"{algorithm}: multiprocess vectorized speedup "
              f"{speedup}x, floor {floor}x{drift} [{status}]")
        if not row["match"]:
            failures.append(f"{algorithm}: generic/vectorized answers "
                            f"diverged (max_diff={row['max_diff']})")
        if speedup < floor:
            failures.append(f"{algorithm}: speedup {speedup}x below "
                            f"floor {floor}x")

    if failures:
        for f in failures:
            print(f"error: {f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
