"""Exp-1's "Single-thread" paragraph: parallel GRAPE+ vs one machine.

The paper reports GRAPE+ 1.63-5.2x faster than single-thread execution for
SSSP/CC over traffic (and notes parallelisation has overheads a single
machine avoids, while large graphs simply do not fit on one).  We compare
the same program on 1 fragment (no messages, PEval alone) against 8
fragments under AAP, in simulated time with uniform worker speed.
"""

import pytest
from conftest import run_once

from repro import api
from repro.algorithms import (CCProgram, CCQuery, SSSPProgram, SSSPQuery)
from repro.bench import workloads
from repro.bench.reporting import format_table


def run_single_vs_parallel():
    from repro.runtime.costmodel import CostModel
    g = workloads.traffic(scale=2.0)
    rows = []

    def cpu_bound_cost():
        # the real single-thread comparison is CPU-bound: per-work-unit
        # time dominates round/message overheads
        return CostModel(alpha=0.2, beta=0.01, latency=0.1, msg_cost=0.01,
                         send_cost=0.005, seed=1)

    for name, prog_factory, query in (
            ("SSSP", SSSPProgram, SSSPQuery(source=0)),
            ("CC", CCProgram, CCQuery())):
        times = {}
        for m in (1, 8):
            pg = workloads.partition(g, m, locality=True)
            r = api.run(prog_factory(), pg, query, mode="AAP",
                        cost_model=cpu_bound_cost(), record_trace=False)
            times[m] = r.time
        rows.append({"algorithm": name, "single": times[1],
                     "parallel8": times[8],
                     "speedup": times[1] / times[8]})
    return rows


def test_exp1_single_thread(benchmark, emit):
    rows = run_once(benchmark, run_single_vs_parallel)
    emit(format_table(
        "Exp-1 (single-thread) - 1 fragment vs 8 fragments under AAP "
        "(traffic, uniform speeds)",
        ["algorithm", "single", "8 workers", "speedup"],
        [[r["algorithm"], r["single"], r["parallel8"],
          round(r["speedup"], 2)] for r in rows]))

    # parallel execution wins despite communication overheads (the paper
    # measures 1.63-5.2x on real hardware; pure-Python simulated work
    # accounting keeps our margin smaller but positive)
    for r in rows:
        assert r["speedup"] > 1.1, r["algorithm"]
        # ...but far less than linearly (the paper's overhead point)
        assert r["speedup"] < 8.0, r["algorithm"]
