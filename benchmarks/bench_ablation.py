"""Ablations of AAP's design choices (DESIGN.md section 5).

Not a paper figure: these isolate the knobs of the adjustment function
delta (Eq. 1) that the paper motivates qualitatively:

- L⊥ (accumulation floor): 0 makes AAP degenerate toward AP; the paper's
  Appendix B initialises it at 60% of the workers for CF and notes users
  may set it to start stale-computation reduction early.
- the arrival-prediction guard (Example 4's "no messages are predicted to
  arrive within the next time unit" rule), ablated via dt_fraction=0.
- incremental evaluation: IncEval's work on re-deliveries is zero
  (bounded incrementality), ablated by comparing message-batch sizes.
"""

from conftest import run_once

from repro import api
from repro.algorithms import SSSPProgram, SSSPQuery
from repro.bench import workloads
from repro.bench.reporting import format_table


def run_l_bottom_ablation():
    graph = workloads.traffic()
    pg = workloads.partition(graph, 8)
    rows = []
    for frac in (0.0, 0.25, 0.5, 1.0):
        r = api.run(SSSPProgram(), pg, SSSPQuery(source=0), mode="AAP",
                    cost_model=workloads.default_cost(straggler=0,
                                                      factor=4.0),
                    l_bottom_fraction=frac, record_trace=False)
        rows.append({"l_bottom_fraction": frac, "time": r.time,
                     "total_rounds": sum(r.rounds),
                     "messages": r.metrics.total_messages})
    return rows


def test_ablation_l_bottom(benchmark, emit):
    rows = run_once(benchmark, run_l_bottom_ablation)
    emit(format_table(
        "Ablation - accumulation floor L_bottom (SSSP, traffic, straggler)",
        ["L_bottom fraction", "time", "total rounds", "messages"],
        [[r["l_bottom_fraction"], r["time"], r["total_rounds"],
          r["messages"]] for r in rows]))

    # stronger accumulation -> fewer total rounds (less stale computation)
    assert rows[-1]["total_rounds"] < rows[0]["total_rounds"]
    # and the default (1.0) must not be slower than the AP-like setting
    assert rows[-1]["time"] <= rows[0]["time"] * 1.10


def run_window_ablation():
    graph = workloads.friendster()
    pg = workloads.partition(graph, 8)
    rows = []
    for dt in (0.0, 0.25, 0.5, 1.0):
        r = api.run(SSSPProgram(), pg, SSSPQuery(source=0), mode="AAP",
                    cost_model=workloads.default_cost(straggler=0,
                                                      factor=4.0),
                    dt_fraction=dt, record_trace=False)
        rows.append({"dt_fraction": dt, "time": r.time,
                     "suspended": r.metrics.total_suspended,
                     "messages": r.metrics.total_messages})
    return rows


def test_ablation_accumulation_window(benchmark, emit):
    rows = run_once(benchmark, run_window_ablation)
    emit(format_table(
        "Ablation - accumulation window dt (SSSP, friendster, straggler)",
        ["dt fraction", "time", "suspended time", "messages"],
        [[r["dt_fraction"], r["time"], r["suspended"], r["messages"]]
         for r in rows]))
    # a zero window disables waiting entirely
    assert rows[0]["suspended"] <= min(r["suspended"] for r in rows) + 1e-9


def run_virtual_workers():
    """The paper's setting has m virtual workers on n < m physical workers
    sharing resources; a suspended virtual worker's host is handed to the
    next runnable one.  Compare 16 virtual workers on 16 vs 4 hosts."""
    graph = workloads.friendster()
    pg = workloads.partition(graph, 16)
    rows = []
    for hosts_desc, hosts in (("16 (dedicated)", None),
                              ("8 (2 per host)", [w // 2 for w in range(16)]),
                              ("4 (4 per host)", [w // 4 for w in range(16)])):
        row = {"hosts": hosts_desc}
        for mode in ("AAP", "BSP"):
            r = api.run(SSSPProgram(), pg, SSSPQuery(source=0), mode=mode,
                        cost_model=workloads.default_cost(seed=1),
                        hosts=hosts, record_trace=False)
            row[mode] = r.time
        rows.append(row)
    return rows


def test_ablation_virtual_workers(benchmark, emit):
    rows = run_once(benchmark, run_virtual_workers)
    emit(format_table(
        "Ablation - m=16 virtual workers on n physical hosts (SSSP)",
        ["hosts", "AAP time", "BSP time"],
        [[r["hosts"], r["AAP"], r["BSP"]] for r in rows]))
    # fewer hosts -> serialised rounds -> slower, for both models
    assert rows[-1]["AAP"] > rows[0]["AAP"]
    assert rows[-1]["BSP"] > rows[0]["BSP"]
    # AAP keeps its edge (or parity) under host sharing
    assert rows[-1]["AAP"] <= rows[-1]["BSP"] * 1.10


def run_latency_sensitivity():
    graph = workloads.friendster()
    pg = workloads.partition(graph, 8)
    rows = []
    for latency in (0.05, 0.25, 1.0, 3.0):
        res = api.compare_modes(
            SSSPProgram, pg, SSSPQuery(source=0), modes=("AAP", "BSP"),
            cost_model_factory=lambda lat=latency: workloads.default_cost(
                straggler=0, factor=4.0).__class__(
                alpha=1.0, beta=0.002, speed={0: 4.0}, latency=lat,
                msg_cost=0.05, send_cost=0.02, seed=1))
        rows.append({"latency": latency, "AAP": res["AAP"].time,
                     "BSP": res["BSP"].time})
    return rows


def test_ablation_latency(benchmark, emit):
    rows = run_once(benchmark, run_latency_sensitivity)
    emit(format_table(
        "Ablation - network latency sensitivity (SSSP, friendster)",
        ["latency", "AAP time", "BSP time"],
        [[r["latency"], r["AAP"], r["BSP"]] for r in rows]))
    # both models get slower as latency rises
    assert rows[-1]["AAP"] > rows[0]["AAP"]
    assert rows[-1]["BSP"] > rows[0]["BSP"]
