"""CF across architectures: GRAPE+ (PIE/AAP) vs a Petuum-style SSP
parameter server.

The paper's summary reports GRAPE+ 30.9x faster than Petuum for CF (text
of Section 7, Table-1 discussion).  The architectural difference this
bench reproduces: the parameter server re-pulls every touched parameter
each clock (communication proportional to clocks x touched parameters),
while GRAPE+ ships only accumulated gradient deltas of shared items.
Both run the same rank/learning-rate/epochs to comparable RMSE.
"""

from conftest import run_once

from repro import api
from repro.algorithms import CFProgram, CFQuery
from repro.baselines.parameter_server import ParameterServerCF
from repro.bench import workloads
from repro.bench.reporting import format_table, human_bytes


def run_cf_systems(num_workers: int = 6, epochs: int = 8, seed: int = 5):
    g, _, _ = workloads.netflix(scale=0.6, seed=seed)
    speed = {0: 3.0}
    rows = []

    # Petuum's general-purpose parameter-server stack pays consistency-
    # manager and table-access overheads per operation; the constants grant
    # it a 3x per-op handicap vs GRAPE+'s compiled fragment loops — far
    # less than the paper's measured 30.9x end-to-end gap
    ps = ParameterServerCF(g, num_workers, rank=4, learning_rate=0.02,
                           epochs=epochs, staleness=2, seed=seed,
                           epoch_cost=2.0, per_rating_cost=0.006,
                           per_param_cost=0.002, speed=speed).run()
    rows.append({"system": "Petuum (param server, SSP c=2)",
                 "time": ps.time, "rmse": ps.rmse,
                 "comm": ps.comm_bytes, "stall": ps.stall_time})

    pg = workloads.partition(g, num_workers, seed=seed)
    query = CFQuery(rank=4, learning_rate=0.02, epochs=epochs, seed=seed)
    for label, program, mode in (
            ("GRAPE+ (AAP, gossip)", CFProgram(rank=4), "AAP"),
            ("GRAPE+ (AAP, server aggregation)",
             CFProgram(rank=4, aggregation="server"), "AAP"),
            ("GRAPE+ (SSP)", CFProgram(rank=4), "SSP"),
            ("GRAPE+ (BSP)", CFProgram(rank=4), "BSP")):
        r = api.run(program, pg, query, mode=mode, staleness_bound=2,
                    cost_model=workloads.grape_cost(straggler=0, factor=3.0,
                                                    seed=seed),
                    record_trace=False)
        rows.append({"system": label,
                     "time": r.time, "rmse": r.answer["rmse"],
                     "comm": r.communication_bytes,
                     "stall": r.metrics.total_suspended})
    return rows


def test_cf_systems(benchmark, emit):
    rows = run_once(benchmark, run_cf_systems)
    emit(format_table(
        "CF across architectures (Netflix stand-in, straggler 3x)",
        ["system", "time", "train RMSE", "comm", "stall"],
        [[r["system"], r["time"], round(r["rmse"], 4),
          human_bytes(r["comm"]), r["stall"]] for r in rows]))

    ps = rows[0]
    gossip = next(r for r in rows if "gossip" in r["system"])
    server = next(r for r in rows if "server" in r["system"])
    # gossip aggregation: comparable model quality at lower time
    assert abs(gossip["rmse"] - ps["rmse"]) < 0.1
    assert gossip["time"] < ps["time"]
    # server aggregation trades convergence speed for traffic: it ships
    # no more than the parameter server re-pulls
    assert server["comm"] <= ps["comm"] * 1.25
    assert server["comm"] < gossip["comm"]
