"""Fig. 6(g)/(h): CF training time vs worker count (movieLens, Netflix).

Paper's shapes: GRAPE+ beats BSP/AP/SSP by 1.38/1.80/1.26x on average;
CF requires bounded staleness (c) for SSP and AAP.
"""

import pytest
from conftest import run_once

from repro.bench import workloads
from repro.bench.experiments import run_modes_experiment
from repro.bench.reporting import format_series

WORKERS = (3, 4, 6, 8)


@pytest.mark.parametrize("dataset", ["movielens", "netflix"])
def test_fig6_cf(benchmark, emit, dataset):
    graph, _, _ = (workloads.movielens() if dataset == "movielens"
                   else workloads.netflix())
    series = run_once(benchmark, run_modes_experiment, "cf", graph, WORKERS,
                      straggler_factor=3.0)
    emit(format_series(
        f"Fig 6({'g' if dataset == 'movielens' else 'h'}) - "
        f"CF on {dataset}, varying workers (straggler 3x)",
        "workers", WORKERS, series))

    aap, bsp = series["AAP"], series["BSP"]
    # AAP does not lose to the barrier model under a straggler
    assert sum(aap) <= sum(bsp) * 1.10
