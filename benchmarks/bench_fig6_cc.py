"""Fig. 6(c)/(d): CC response time vs worker count (traffic, Friendster).

Paper's shapes: GRAPE+ beats its BSP/AP/SSP variants (up to 27.4x vs BSP on
traffic) and scales with n (2.68x on average from 64 to 192 workers).
"""

import pytest
from conftest import run_once

from repro.bench import workloads
from repro.bench.experiments import run_modes_experiment
from repro.bench.reporting import format_series

WORKERS = (4, 6, 8, 10, 12)


@pytest.mark.parametrize("dataset", ["traffic", "friendster"])
def test_fig6_cc(benchmark, emit, dataset):
    graph = (workloads.traffic() if dataset == "traffic"
             else workloads.friendster())
    series = run_once(benchmark, run_modes_experiment, "cc", graph, WORKERS)
    emit(format_series(
        f"Fig 6({'c' if dataset == 'traffic' else 'd'}) - "
        f"CC on {dataset}, varying workers (straggler 4x)",
        "workers", WORKERS, series))

    aap, bsp = series["AAP"], series["BSP"]
    assert all(a <= b * 1.10 for a, b in zip(aap, bsp))
    # the BSP penalty exists at some point of the sweep
    assert any(b > a * 1.05 for a, b in zip(aap, bsp))
