#!/usr/bin/env python
"""CI chaos smoke: the respawn matrix with JSON artifacts.

Runs one mid-run crash scenario per cell of
``{threaded, multiprocess} x {AAP, BSP} x {1 crash, 2 crashes}`` with the
rung-1 respawn budget armed, and asserts the surgical-recovery contract
on every cell:

- the run completes without a whole-run restart (``recoveries == 0``),
- every injected crash was absorbed by an in-place respawn
  (``respawns == crashes``),
- the answer matches a fault-free reference run.

One JSON report per cell plus a ``summary.json`` land in ``--out`` for
upload as CI artifacts.  Exit status is non-zero when any cell violates
the contract — this is a gate, not a benchmark.
"""

from __future__ import annotations

import argparse
import itertools
import json
import pathlib
import sys

from repro.algorithms import SSSPProgram, SSSPQuery
from repro.graph import generators
from repro.partition.edge_cut import HashPartitioner
from repro.runtime.faultplan import CrashFault, FaultPlan
from repro.runtime.recovery import run_chaos

RUNTIMES = ("threaded", "multiprocess")
MODES = ("AAP", "BSP")
CRASH_SETS = {
    1: (CrashFault(wid=1, at_round=2),),
    2: (CrashFault(wid=1, at_round=2), CrashFault(wid=2, at_round=3)),
}


def run_cell(pg, runtime: str, mode: str, crashes: int,
             timeout: float) -> dict:
    plan = FaultPlan(seed=7, faults=CRASH_SETS[crashes])
    report = run_chaos(
        SSSPProgram(), pg, SSSPQuery(source=0), plan,
        runtime=runtime, mode=mode, respawn_budget=1,
        checkpoint_interval=0.01, heartbeat_interval=0.005,
        heartbeat_timeout=0.25, timeout=timeout)
    report["cell"] = {"runtime": runtime, "mode": mode, "crashes": crashes}
    report["contract_ok"] = bool(
        report.get("ok")
        and report.get("answer_matches_reference")
        and report.get("respawns") == crashes
        and report.get("recoveries") == 0
        and report.get("rung") == 1)
    return report


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--graph", default="12x12",
                    help="grid dimensions ROWSxCOLS (default 12x12)")
    ap.add_argument("--fragments", type=int, default=4)
    ap.add_argument("--timeout", type=float, default=60.0)
    ap.add_argument("--out", default="chaos-out",
                    help="artifact directory for the per-cell reports")
    args = ap.parse_args(argv)

    rows, _, cols = args.graph.partition("x")
    grid = generators.grid2d(int(rows), int(cols))
    pg = HashPartitioner().partition(grid, args.fragments)

    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    summary, failed = [], []
    for runtime, mode, crashes in itertools.product(
            RUNTIMES, MODES, sorted(CRASH_SETS)):
        name = f"{runtime}-{mode}-{crashes}crash"
        report = run_cell(pg, runtime, mode, crashes, args.timeout)
        (out / f"{name}.json").write_text(json.dumps(report, indent=2,
                                                     default=str))
        ok = report["contract_ok"]
        summary.append({"cell": name, "contract_ok": ok,
                        "respawns": report.get("respawns"),
                        "takeovers": report.get("takeovers"),
                        "recoveries": report.get("recoveries"),
                        "rung": report.get("rung"),
                        "elapsed": round(report.get("elapsed", 0.0), 3)})
        if not ok:
            failed.append(name)
        print(f"{'PASS' if ok else 'FAIL'}  {name:28s} "
              f"respawns={report.get('respawns')} "
              f"recoveries={report.get('recoveries')} "
              f"rung={report.get('rung')} "
              f"elapsed={report.get('elapsed', 0.0):.2f}s")
    (out / "summary.json").write_text(json.dumps(summary, indent=2))
    if failed:
        print(f"\nchaos smoke FAILED: {', '.join(failed)}", file=sys.stderr)
        return 1
    print(f"\nchaos smoke passed: {len(summary)} cells, "
          f"all crashes absorbed in place")
    return 0


if __name__ == "__main__":
    sys.exit(main())
