"""Fig. 6(e)/(f): PageRank response time vs worker count (Friendster, UKWeb).

Paper's shapes: GRAPE+ beats BSP/AP/SSP variants by 1.80/1.90/1.25x on
average (stragglers took 50/27/28 rounds under BSP/AP/SSP vs 24 under AAP);
time decreases with n (2.16x on average).
"""

import pytest
from conftest import run_once

from repro.bench import workloads
from repro.bench.experiments import run_modes_experiment
from repro.bench.reporting import format_series

WORKERS = (4, 6, 8, 10)


@pytest.mark.parametrize("dataset", ["friendster", "ukweb"])
def test_fig6_pagerank(benchmark, emit, dataset):
    graph = (workloads.friendster() if dataset == "friendster"
             else workloads.ukweb())
    series = run_once(benchmark, run_modes_experiment, "pagerank", graph,
                      WORKERS)
    emit(format_series(
        f"Fig 6({'e' if dataset == 'friendster' else 'f'}) - "
        f"PageRank on {dataset}, varying workers (straggler 4x)",
        "workers", WORKERS, series))

    aap = series["AAP"]
    # AAP within 10% of every mode at every point, strictly best somewhere
    for mode in ("BSP", "AP", "SSP"):
        assert all(a <= o * 1.10 for a, o in zip(aap, series[mode])), mode
    assert any(aap[i] < min(series[m][i] for m in ("BSP", "AP", "SSP"))
               for i in range(len(WORKERS)))
