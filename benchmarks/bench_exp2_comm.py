"""Exp-2: communication cost (bytes shipped) per mode.

Paper's findings: GRAPE+'s communication is 1.22x / 2.5x(=1/0.40) / 1.02x
that of GRAPE+BSP / GRAPE+AP / GRAPE+SSP — i.e. AP ships the most (many
small stale updates), BSP the least (fully batched), AAP close to SSP and
"not much worse" than BSP despite running asynchronously.
"""

from conftest import run_once

from repro.bench.experiments import run_communication
from repro.bench.reporting import format_table, human_bytes


def test_exp2_communication(benchmark, emit):
    rows = run_once(benchmark, run_communication)
    emit(format_table(
        "Exp-2 - communication per mode (SSSP + PageRank, Friendster)",
        ["algorithm", "mode", "time", "bytes", "messages"],
        [[r["algorithm"], r["mode"], r["time"],
          human_bytes(r["bytes"]), r["messages"]] for r in rows]))

    by = {(r["algorithm"], r["mode"]): r for r in rows}
    for algorithm in ("sssp", "pagerank"):
        bsp = by[(algorithm, "BSP")]["bytes"]
        ap = by[(algorithm, "AP")]["bytes"]
        aap = by[(algorithm, "AAP")]["bytes"]
        # AP ships the most; AAP ships less than AP
        assert ap >= aap, algorithm
        # AAP's overhead over fully-batched BSP is bounded (paper: 1.22x)
        assert aap <= bsp * 2.0, algorithm
