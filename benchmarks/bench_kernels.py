"""Generic vs vectorized kernel speedup bench (standalone script).

Unlike the sibling pytest benches this one is a plain CLI so CI can run
it at tiny sizes and upload the JSON artifact::

    python benchmarks/bench_kernels.py --graph powerlaw:40000 \
        --runtimes simulated,threaded,multiprocess --out BENCH_kernels.json

It is equivalent to ``repro bench -e kernels``.  Exits non-zero when any
vectorized-vs-generic cross-check fails.
"""

import argparse
import pathlib
import sys

try:
    from repro.bench import kernels
except ImportError:  # run from a checkout without installing
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1]
                           / "src"))
    from repro.bench import kernels

from repro.cli import parse_graph


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--graph", default="powerlaw:40000",
                        help="graph spec (grid:RxC, powerlaw:N, er:N:P, "
                             "rmat:S, path:N, file:PATH)")
    parser.add_argument("--fragments", "-m", type=int, default=4)
    parser.add_argument("--mode", default="AP")
    parser.add_argument("--runtimes",
                        default="simulated,threaded,multiprocess",
                        help="comma-separated subset of "
                             "simulated,threaded,multiprocess")
    parser.add_argument("--algorithms", default=None,
                        help="comma-separated subset of "
                             "sssp,cc,pagerank (default: all)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--timeout", type=float, default=600.0)
    parser.add_argument("--transport", default=None,
                        choices=["shm", "queue"],
                        help="multiprocess data plane (default: the "
                             "runtime's default, shm)")
    parser.add_argument("--out", default="BENCH_kernels.json")
    args = parser.parse_args(argv)

    graph = parse_graph(args.graph, seed=args.seed)
    algorithms = kernels.ALGORITHMS
    if args.algorithms:
        algorithms = tuple(a.strip() for a in args.algorithms.split(",")
                           if a.strip())
        for a in algorithms:
            if a not in kernels.ALGORITHMS:
                parser.error(f"unknown algorithm {a!r}")
    report = kernels.run_kernel_bench(
        graph, fragments=args.fragments, mode=args.mode,
        runtimes=kernels.parse_runtimes(args.runtimes),
        algorithms=algorithms,
        timeout=args.timeout, transport=args.transport,
        progress=lambda line: print(line, file=sys.stderr))
    print(kernels.format_kernel_report(report))
    kernels.save_report(report, args.out)
    print(f"wrote {args.out}")
    return 0 if report["all_match"] else 1


if __name__ == "__main__":
    sys.exit(main())
