"""Fig. 6(l): AAP speedup on the large synthetic graph with many workers.

Paper's shape: on the 10B-edge synthetic graphs with 192..320 workers, AAP
is on average 4.3/14.7/4.7x faster than BSP/AP/SSP — the advantage is larger
than on the small real-life graphs because stragglers and stale computation
are heavier at scale.
"""

from conftest import run_once

from repro.bench.experiments import run_largescale
from repro.bench.reporting import format_series

WORKERS = (8, 12, 16)


def test_fig6_largescale(benchmark, emit):
    series = run_once(benchmark, run_largescale, WORKERS)
    emit(format_series(
        "Fig 6(l) - PageRank on the large synthetic graph (skew 3, "
        "straggler 3x)", "workers", WORKERS, series))

    aap = series["AAP"]
    for mode in ("BSP", "AP", "SSP"):
        # AAP is at least as good as every other model on aggregate
        assert sum(aap) <= sum(series[mode]) * 1.05, mode
    # and strictly better than the barrier models
    assert sum(aap) < sum(series["BSP"])
