"""Fig. 6(k): impact of partition skew r on SSSP.

Paper's shape: the more skewed the partition, the more effective AAP is —
at r=9 AAP beats BSP/AP/SSP by 9.5/2.3/4.9x; at r=1 (balanced) BSP works
well and AAP works as well as BSP.
"""

from conftest import run_once

from repro.bench.experiments import run_partition_impact
from repro.bench.reporting import format_series

RATIOS = (1, 3, 5, 7, 9)


def test_fig6_partition_impact(benchmark, emit):
    series = run_once(benchmark, run_partition_impact, RATIOS)
    emit(format_series(
        "Fig 6(k) - SSSP vs partition skew ratio r (no CPU straggler)",
        "skew r", RATIOS, series))

    aap, bsp = series["AAP"], series["BSP"]
    # balanced partition: AAP roughly matches BSP
    assert aap[0] <= bsp[0] * 1.25
    # skewed partitions: AAP ahead of BSP, and the advantage grows with r
    assert aap[-1] < bsp[-1]
    gain_low = bsp[0] / aap[0]
    gain_high = bsp[-1] / aap[-1]
    assert gain_high > gain_low
    # AAP stays within 15% of the best mode at the highest skew
    best = min(series[m][-1] for m in series)
    assert aap[-1] <= best * 1.15
