"""Table 1: PageRank and SSSP on parallel systems (time + communication).

Paper's rows (Friendster, 192 workers):

    System          PR time  PR comm   SSSP time  SSSP comm
    Giraph          6117.7s  767.3GB   416.0s     99.4GB
    GraphLab-sync   99.5s    138.0GB   37.6s      110.0GB
    GraphLab-async  200.1s   333.0GB   194.1s     368.7GB
    GiraphUC        9991.6s  3616.5GB  278.9s     121.9GB
    Maiter          199.9s   134.3GB   258.9s     107.2GB
    PowerSwitch     85.1s    39.9GB    32.5s      41.5GB
    GRAPE+          26.4s    37.3GB    12.7s      18.3GB

Shape to reproduce: GRAPE+ fastest and cheapest on both algorithms;
Giraph/GiraphUC slowest; PowerSwitch the closest competitor among the
C++ engines.
"""

from conftest import run_once

from repro.bench.experiments import run_table1
from repro.bench.reporting import format_table, human_bytes


def test_table1_systems(benchmark, emit):
    rows = run_once(benchmark, run_table1, 8)
    by_system = {r["system"]: r for r in rows}
    grape = by_system["GRAPE+"]

    table_rows = []
    for r in rows:
        table_rows.append([
            r["system"],
            r["pagerank_time"], human_bytes(r["pagerank_comm"]),
            r["sssp_time"], human_bytes(r["sssp_comm"]),
        ])
    emit(format_table(
        "Table 1 - PageRank and SSSP across systems "
        "(simulated time units / shipped bytes)",
        ["System", "PR time", "PR comm", "SSSP time", "SSSP comm"],
        table_rows))

    # shape assertions: GRAPE+ strictly fastest, Giraph-family slowest
    others_pr = [r["pagerank_time"] for r in rows if r["system"] != "GRAPE+"]
    others_ss = [r["sssp_time"] for r in rows if r["system"] != "GRAPE+"]
    assert grape["pagerank_time"] < min(others_pr)
    assert grape["sssp_time"] < min(others_ss)
    assert by_system["Giraph"]["pagerank_time"] > \
        by_system["GraphLab-sync"]["pagerank_time"]
    assert by_system["GiraphUC"]["pagerank_time"] > \
        by_system["PowerSwitch"]["pagerank_time"]
    # GRAPE+ ships no more than any vertex-centric competitor
    assert grape["sssp_comm"] <= min(
        r["sssp_comm"] for r in rows if r["system"] != "GRAPE+")
