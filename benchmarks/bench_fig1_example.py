"""Fig. 1 / Examples 1+4: the three-worker CC scenario.

P1, P2 take 3 time units per round, P3 takes 6, messages take 1 unit.
Checks of Example 1's qualitative claims: under BSP every superstep costs
the straggler's 6 units; AP is not blocked but computes redundant rounds;
AAP converges with the straggler doing no more rounds than under BSP and
finishes no later than BSP.
"""

from conftest import run_once

from repro import api
from repro.algorithms import CCProgram, CCQuery
from repro.bench.reporting import format_table
from repro.bench.workloads import fig1_cost_model, fig1_partition
from repro.core.modes import MODES
from repro.runtime.trace import ascii_gantt


def run_fig1():
    pg = fig1_partition()
    out = {}
    for mode in ("BSP", "AP", "SSP", "AAP"):
        out[mode] = api.run(CCProgram(), pg, CCQuery(), mode=mode,
                            cost_model=fig1_cost_model(),
                            staleness_bound=1 if mode == "SSP" else None)
    return out


def test_fig1_example(benchmark, emit):
    runs = run_once(benchmark, run_fig1)
    rows = [[mode, r.time, max(r.rounds), r.rounds[2],
             r.metrics.total_messages]
            for mode, r in runs.items()]
    report = [format_table(
        "Fig 1 - CC at three workers (P1,P2: 3 units/round, P3: 6)",
        ["mode", "time", "max rounds", "P3 rounds", "messages"], rows)]
    for mode, r in runs.items():
        report.append("")
        report.append(ascii_gantt(r.trace, width=70, label=f"[{mode}]"))
    emit("\n".join(report))

    for mode, r in runs.items():
        assert set(r.answer.values()) == {0}, mode
    # BSP supersteps are gated by P3
    bsp = runs["BSP"]
    assert bsp.time >= 6 * (max(bsp.rounds) - 1)
    # AAP finishes no later than BSP, straggler does no more rounds
    assert runs["AAP"].time <= runs["BSP"].time + 1e-9
    assert runs["AAP"].rounds[2] <= runs["BSP"].rounds[2]
    # AP runs more total rounds than AAP (redundant stale computation)
    assert sum(runs["AP"].rounds) >= sum(runs["AAP"].rounds)
