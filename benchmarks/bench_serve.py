"""Serving benchmark: seeded mixed update/query load on GraphService.

A plain CLI (like ``bench_kernels.py``) so CI can run it at smoke sizes
and upload the JSON artifact::

    python benchmarks/bench_serve.py --graph powerlaw:800 \
        --queries 1000 --batches 24 --out BENCH_serve.json

Drives one :class:`repro.serve.LoadGenerator` per algorithm (skewed keys,
mixed staleness bounds) and reports p50/p95/p99 query latency, the served
staleness distribution, sustained updates/sec and cache effectiveness.
Exits non-zero on any staleness-contract violation or if the drained
service disagrees with a full recomputation.
"""

import argparse
import json
import pathlib
import platform
import sys

try:
    from repro.serve import (GraphService, LoadGenerator,
                             verify_against_recompute)
except ImportError:  # run from a checkout without installing
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1]
                           / "src"))
    from repro.serve import (GraphService, LoadGenerator,
                             verify_against_recompute)

from repro.cli import build_program, parse_graph


def bench_one(algo, args):
    graph = parse_graph(args.graph, seed=args.seed)
    program, query = build_program(algo, graph, None)
    service = GraphService(program, graph, query,
                           num_fragments=args.fragments, mode=args.mode,
                           runtime=args.runtime)
    gen = LoadGenerator(service, seed=args.seed,
                        num_queries=args.queries,
                        num_batches=args.batches,
                        batch_size=args.batch_size, skew=args.skew)
    report = gen.run()
    report["algorithm"] = algo
    report["matches_recompute"] = verify_against_recompute(service)
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--graph", default="powerlaw:800")
    parser.add_argument("--fragments", "-m", type=int, default=4)
    parser.add_argument("--mode", default="AAP")
    parser.add_argument("--runtime", default="threaded",
                        choices=["threaded", "simulated"])
    parser.add_argument("--algorithms", default="sssp,cc",
                        help="comma-separated subset of sssp,cc")
    parser.add_argument("--queries", type=int, default=1000)
    parser.add_argument("--batches", type=int, default=24)
    parser.add_argument("--batch-size", type=int, default=8)
    parser.add_argument("--skew", type=float, default=2.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_serve.json")
    args = parser.parse_args(argv)

    runs = []
    ok = True
    for algo in args.algorithms.split(","):
        report = bench_one(algo.strip(), args)
        runs.append(report)
        lat = report["queries"]["latency"]
        print(f"{algo:>8}: p50 {lat['p50_ms']:.3f} ms  "
              f"p95 {lat['p95_ms']:.3f} ms  p99 {lat['p99_ms']:.3f} ms  "
              f"{report['updates']['updates_per_sec']:.0f} upd/s  "
              f"violations {report['staleness']['violations']}  "
              f"match {report['matches_recompute']}", file=sys.stderr)
        ok = ok and report["matches_recompute"] \
            and report["staleness"]["violations"] == 0
    doc = {
        "bench": "serve",
        "graph": args.graph,
        "mode": args.mode,
        "runtime": args.runtime,
        "fragments": args.fragments,
        "seed": args.seed,
        "python": platform.python_version(),
        "all_ok": ok,
        "runs": runs,
    }
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}", file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
