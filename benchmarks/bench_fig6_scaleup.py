"""Fig. 6(i)/(j): scale-up of SSSP and PageRank.

Graph size and worker count grow proportionally; the paper reports a
"reasonable scale-up": the time ratio vs the smallest configuration stays
bounded (their plots stay within ~1.2 of flat).
"""

import pytest
from conftest import run_once

from repro.bench.experiments import run_scaleup
from repro.bench.reporting import format_series

WORKERS = (4, 8, 12, 16)


@pytest.mark.parametrize("algorithm", ["sssp", "pagerank"])
def test_fig6_scaleup(benchmark, emit, algorithm):
    data = run_once(benchmark, run_scaleup, algorithm, WORKERS)
    emit(format_series(
        f"Fig 6({'i' if algorithm == 'sssp' else 'j'}) - "
        f"scale-up of {algorithm} under AAP (graph grows with workers)",
        "workers", data["workers"],
        {"time": data["time"], "ratio": data["ratio"]}))

    # reasonable scale-up: 4x data on 4x workers costs < 3x time
    assert all(r < 3.0 for r in data["ratio"])
