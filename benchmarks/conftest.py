"""Shared benchmark helpers.

Every bench regenerates one table/figure of the paper: it runs the
experiment once inside ``benchmark.pedantic`` (deterministic, no warmup
noise), prints the paper-shaped rows/series, and writes them to
``benchmarks/out/<name>.txt`` so the output survives pytest's capture.
"""

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def report_dir():
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture
def emit(report_dir, request):
    """Print a report block and persist it under the test's name."""

    def _emit(text: str) -> None:
        print()
        print(text)
        name = request.node.name.replace("/", "_")
        (report_dir / f"{name}.txt").write_text(text + "\n",
                                                encoding="utf-8")

    return _emit


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark's timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
