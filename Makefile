PYTHON ?= python
PYTHONPATH := src

.PHONY: test lint trace-demo fuzz fuzz-smoke chaos-smoke serve-smoke

## tier-1 test suite (the CI gate)
test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

## ruff lint gate; configured in pyproject.toml ([tool.ruff]).
## The container used for CI does not bake ruff in, so the target skips
## (successfully) when the binary is absent instead of failing the build.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests; \
	else \
		echo "lint: ruff not installed; skipping (config in pyproject.toml)"; \
	fi

## schedule fuzzing + differential conformance (docs/conformance.md)
fuzz:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli fuzz --seeds 50 \
		--artifact-dir fuzz-artifacts

## the CI fuzz gate: small graphs, 20 seeds, plus the 90-cell grid
fuzz-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli fuzz --seeds 20 \
		--smoke --artifact-dir fuzz-artifacts
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli fuzz --differential \
		--graph grid:6x6 -m 3 --quiet

## the CI respawn gate: every cell of {threaded,multiprocess} x
## {AAP,BSP} x {1,2 crashes} must absorb its crashes in place (rung 1
## of the degradation ladder; see docs/fault_tolerance.md)
chaos-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/chaos_smoke.py \
		--out chaos-out

## the CI serving gate: short mixed update/query workload through the
## resident service; fails on any staleness-contract violation or if
## the drained service diverges from full recomputation
## (docs/serving.md)
serve-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/bench_serve.py \
		--graph powerlaw:300 --queries 300 --batches 12 \
		--out BENCH_serve_smoke.json

## example observability run: straggler SSSP -> Chrome trace + audit
trace-demo:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli trace \
		--algorithm sssp --graph grid:10x10 --straggler 4 \
		--out trace.json --jsonl events.jsonl --explain 0
	@echo "open trace.json in chrome://tracing or https://ui.perfetto.dev"
